"""Benchmark: the design-space search of [5, 6, 10].

Times the joint (S, Π) search that produced designs like the paper's
Fig. 4, and reports the best designs found for the bit-level matmul
structure -- including ones the paper does not list (same optimal time,
fewer processors at small sizes).

Besides the pytest-benchmark kernels, this module doubles as a script:

* ``python benchmarks/bench_design_search.py --smoke [--metrics-out F]``
  runs a small instance once and asserts the engine's memoization is
  live (``mapping.cache_hits > 0``) -- the CI guard.
* ``python benchmarks/bench_design_search.py --record`` runs the blocked
  u=3, p=3 instance three ways -- catalog strategy at ``workers=1`` and
  ``workers=4``, then the branch-and-prune solver strategy -- verifies
  every run returns identical designs, and updates
  ``BENCH_design_search.json`` at the repo root with the engine timings
  plus the solver's candidates-enumerated ratio and wall-clock speedup
  (the pre-engine baseline entry is preserved).
"""

import argparse
import json
import os
import pathlib
import sys
import time

import pytest

from repro import obs
from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments.tables import format_table
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.mapping.engine import SearchConfig, run_search

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_design_search.json"


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    u, p = 2, 2
    alg = matmul_bit_level(u, p, "II")
    config = SearchConfig(target_space_dim=2, block_values=[p],
                          schedule_bound=2, max_candidates=5)
    with obs.collecting() as reg:
        cands = run_search(alg, {"u": u, "p": p},
                           designs.fig4_primitives(p), config)
    rows = [
        (i + 1, c.time, c.processors,
         "; ".join(str(list(r)) for r in c.mapping.rows))
        for i, c in enumerate(cands)
    ]
    rows.append(
        ("Fig4", designs.t_fig4(u, p), designs.fig4_processor_count(u, p),
         "; ".join(str(list(r)) for r in designs.fig4_mapping(p).rows))
    )
    text = format_table(
        ["rank", "time", "PEs", "T = [S; Π]"],
        rows,
        title=f"Design-space search, bit-level matmul (u={u}, p={p})",
    )
    report_writer(
        "design-search", text,
        data={"u": u, "p": p, "rows": rows, "metrics": obs.metrics_dict(reg)},
    )


def test_bench_search_word_level(benchmark):
    alg = matmul_word_structure()
    config = SearchConfig(target_space_dim=2, block_values=(),
                          schedule_bound=1, max_candidates=3)
    cands = benchmark(run_search, alg, {"u": 3}, None, config)
    assert cands and cands[0].time == 7


def test_bench_search_bit_level(benchmark):
    alg = matmul_bit_level(2, 2, "II")
    config = SearchConfig(target_space_dim=2, block_values=[2],
                          schedule_bound=2, max_candidates=2)
    cands = benchmark(
        run_search, alg, {"u": 2, "p": 2}, designs.fig4_primitives(2), config
    )
    assert cands
    assert cands[0].time <= designs.t_fig4(2, 2)


def test_bench_search_parallel_identical(benchmark):
    """workers=4 merge path; asserts determinism against workers=1."""
    alg = matmul_bit_level(2, 2, "II")
    binding = {"u": 2, "p": 2}
    prims = designs.fig4_primitives(2)
    base = run_search(alg, binding, prims,
                      SearchConfig(block_values=[2], max_candidates=5))
    config = SearchConfig(block_values=[2], max_candidates=5, workers=4)
    cands = benchmark.pedantic(
        run_search, args=(alg, binding, prims, config), rounds=1, iterations=1
    )
    assert [(c.mapping.rows, c.time, c.processors) for c in cands] == \
        [(c.mapping.rows, c.time, c.processors) for c in base]


# -- script modes -----------------------------------------------------------

def _candidate_rows(cands):
    return [
        {"time": c.time, "processors": c.processors,
         "rows": [list(r) for r in c.mapping.rows]}
        for c in cands
    ]


def _timed_search(alg, binding, prims, config, repeats=3):
    """Best-of-N wall clock plus the (identical) result and metrics."""
    best = None
    cands = None
    metrics = None
    for _ in range(repeats):
        with obs.collecting() as reg:
            t0 = time.perf_counter()
            cands = run_search(alg, binding, prims, config)
            elapsed = time.perf_counter() - t0
        metrics = obs.metrics_dict(reg)
        best = elapsed if best is None else min(best, elapsed)
    return best, cands, metrics


def _smoke(metrics_out: str | None) -> int:
    alg = matmul_bit_level(2, 2, "II")
    config = SearchConfig(target_space_dim=2, block_values=[2],
                          schedule_bound=2, max_candidates=5)
    with obs.collecting() as reg:
        cands = run_search(alg, {"u": 2, "p": 2},
                           designs.fig4_primitives(2), config)
    metrics = obs.metrics_dict(reg)
    if metrics_out:
        pathlib.Path(metrics_out).write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n"
        )
    hits = metrics["counters"].get("mapping.cache_hits", 0)
    found = metrics["counters"].get("mapping.designs_found", 0)
    print(f"smoke: {len(cands)} designs, cache_hits={hits}, "
          f"designs_found={found}")
    assert cands, "smoke search found no designs"
    assert hits > 0, "memoization produced no cache hits"
    return 0


def _record(repeats: int) -> int:
    u, p = 3, 3
    alg = matmul_bit_level(u, p, "II")
    binding = {"u": u, "p": p}
    prims = designs.fig4_primitives(p)

    def config(workers, strategy="catalog"):
        return SearchConfig(target_space_dim=2, block_values=[p],
                            schedule_bound=2, max_candidates=5,
                            workers=workers, strategy=strategy)

    print(f"recording u={u} p={p} blocked-catalog instance "
          f"(best of {repeats})...")
    t_seq, cands_seq, m_seq = _timed_search(alg, binding, prims,
                                            config(1), repeats)
    t_par, cands_par, m_par = _timed_search(alg, binding, prims,
                                            config(4), repeats)
    identical = _candidate_rows(cands_seq) == _candidate_rows(cands_par)
    print(f"workers=1: {t_seq:.3f}s  workers=4: {t_par:.3f}s  "
          f"identical={identical}")
    assert identical, "parallel search diverged from sequential"

    t_sol, cands_sol, m_sol = _timed_search(
        alg, binding, prims, config(1, strategy="solver"), repeats
    )
    solver_identical = _candidate_rows(cands_sol) == _candidate_rows(cands_seq)
    n_catalog = m_seq["counters"].get("mapping.candidates_enumerated", 0)
    n_solver = m_sol["counters"].get("mapping.candidates_enumerated", 0)
    ratio = n_catalog / max(n_solver, 1)
    print(f"solver: {t_sol:.3f}s  candidates {n_solver} vs catalog "
          f"{n_catalog} ({ratio:.1f}x fewer)  identical={solver_identical}")
    assert solver_identical, "solver search diverged from catalog"
    assert ratio >= 10, f"solver candidate cut {ratio:.1f}x below 10x"

    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    baseline = data.get("baseline", {}).get("seconds")
    data.update({
        "instance": {
            "algorithm": "matmul_bit_level", "u": u, "p": p,
            "expansion": "II", "primitives": "fig4",
            "config": {"target_space_dim": 2, "block_values": [p],
                       "schedule_bound": 2, "max_candidates": 5},
        },
        "environment": {"cpu_count": os.cpu_count(),
                        "python": sys.version.split()[0]},
        "engine": {
            "workers_1": {
                "seconds": round(t_seq, 3),
                "cache_hits": m_seq["counters"].get("mapping.cache_hits"),
                "cache_misses": m_seq["counters"].get("mapping.cache_misses"),
                "candidates_enumerated": m_seq["counters"].get(
                    "mapping.candidates_enumerated"),
                "conflict_checks": m_seq["counters"].get(
                    "mapping.conflict_checks"),
            },
            "workers_4": {
                "seconds": round(t_par, 3),
                "cache_hits": m_par["counters"].get("mapping.cache_hits"),
            },
            "results_identical_across_workers": identical,
        },
        "solver": {
            "seconds": round(t_sol, 3),
            "cache_hits": m_sol["counters"].get("mapping.cache_hits"),
            "cache_misses": m_sol["counters"].get("mapping.cache_misses"),
            "candidates_enumerated": n_solver,
            "catalog_candidates_enumerated": n_catalog,
            "candidates_ratio": round(ratio, 2),
            "speedup_vs_catalog": round(t_seq / t_sol, 2),
            "results_identical_to_catalog": solver_identical,
        },
        "top_candidates": _candidate_rows(cands_seq),
    })
    if baseline:
        data["speedup_workers_1_vs_baseline"] = round(baseline / t_seq, 2)
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_FILE}")
    if baseline:
        print(f"speedup vs pre-engine baseline ({baseline}s): "
              f"{baseline / t_seq:.1f}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true",
                      help="small instance; assert memoization is live")
    mode.add_argument("--record", action="store_true",
                      help="measure the u=3,p=3 instance and update "
                           "BENCH_design_search.json")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the smoke run's metrics dict as JSON")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats for --record (best-of)")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args.metrics_out)
    return _record(args.repeats)


if __name__ == "__main__":
    raise SystemExit(main())
