"""Shared benchmark plumbing.

Each benchmark module regenerates one of the paper's figures/results (see
DESIGN.md's experiment index).  Besides timing the kernels with
pytest-benchmark, every module renders its experiment report; reports are
printed and also written to ``benchmarks/_reports/<id>.txt`` so they survive
pytest's output capture.

Modules that produce structured results pass them as ``data``; those are
written alongside as ``benchmarks/_reports/<id>.json`` (experiment data
plus, when the module collected one, a :mod:`repro.obs` metrics dict), so
successive runs accumulate a machine-readable perf trajectory.
"""

from __future__ import annotations

import json
import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"


def emit_report(exp_id: str, text: str, data: dict | None = None) -> None:
    """Print a report and persist it under benchmarks/_reports/.

    ``data``, when given, must be JSON-serializable (tuples become lists)
    and is written to ``_reports/<exp_id>.json``; the ``.txt`` output is
    unchanged either way.  An ``environment`` block (CPU count, Python,
    numpy, commit) is captured automatically unless the module supplied
    its own.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{exp_id}.txt").write_text(text + "\n")
    if data is not None:
        from repro import obs

        data.setdefault("environment", obs.environment_info())
        (REPORT_DIR / f"{exp_id}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True, default=str) + "\n"
        )
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


@pytest.fixture(scope="session")
def report_writer():
    """Fixture handle for :func:`emit_report`."""
    return emit_report
