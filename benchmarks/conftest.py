"""Shared benchmark plumbing.

Each benchmark module regenerates one of the paper's figures/results (see
DESIGN.md's experiment index).  Besides timing the kernels with
pytest-benchmark, every module renders its experiment report; reports are
printed and also written to ``benchmarks/_reports/<id>.txt`` so they survive
pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"


def emit_report(exp_id: str, text: str) -> None:
    """Print a report and persist it under benchmarks/_reports/."""
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{exp_id}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


@pytest.fixture(scope="session")
def report_writer():
    """Fixture handle for :func:`emit_report`."""
    return emit_report
