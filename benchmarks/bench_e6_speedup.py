"""E6 benchmarks -- Section 4.2: speedup over the word-level baseline.

Benchmarks both matmul machines on the same workload so that who-wins is
measured, not just computed from formulas; regenerates the E6 sweep report
(add-shift speedup ~ O(p²), carry-save ~ O(p)).
"""

import pytest

from repro.experiments import e6_speedup
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.wordlevel import WordLevelMatmulMachine
from repro.mapping import designs


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    data = e6_speedup.run()
    report_writer("E6-speedup", e6_speedup.report(data), data)


U, P = 3, 4
X = [[(7 * i + j) % (1 << P) for j in range(U)] for i in range(U)]
Y = [[(i + 11 * j + 3) % (1 << P) for j in range(U)] for i in range(U)]


def test_bench_bit_level_machine(benchmark):
    machine = BitLevelMatmulMachine(U, P, designs.fig4_mapping(P), "II")
    out = benchmark(machine.run, X, Y)
    assert out.sim.makespan == designs.t_fig4(U, P)


@pytest.mark.parametrize("arith", ["add-shift", "carry-save"])
def test_bench_word_level_machine(benchmark, arith):
    machine = WordLevelMatmulMachine(U, P, arith)
    out = benchmark(machine.run, X, Y)
    assert out.total_cycles == designs.word_level_time(U, P, arith)


def test_bench_speedup_sweep(benchmark):
    data = benchmark(e6_speedup.run, 16, (2, 4, 8), (3, 3))
    assert data["ok"]
