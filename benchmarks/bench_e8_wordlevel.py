"""E8 benchmarks -- Section 2: the word-level preprocessing pipeline.

Times single-assignment conversion, broadcast elimination and the analysis
of the resulting program (2.3); regenerates the E8 report.
"""

import pytest

from repro.depanalysis import analyze
from repro.experiments import e8_wordlevel
from repro.ir.builders import matmul_naive, matmul_pipelined
from repro.ir.transform import eliminate_broadcasts


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    report_writer("E8-wordlevel-pipeline", e8_wordlevel.report())


def test_bench_broadcast_elimination(benchmark):
    prog = matmul_naive(8)
    out = benchmark(eliminate_broadcasts, prog)
    assert len(out.statements) == 3


def test_bench_analyze_pipelined(benchmark):
    prog = matmul_pipelined(5)
    result = benchmark(analyze, prog, {"u": 5}, "exact")
    assert len(result.distinct_vectors()) == 3


def test_bench_analyze_pipelined_enumerate(benchmark):
    prog = matmul_pipelined(8)
    result = benchmark(analyze, prog, {"u": 8}, "enumerate")
    assert len(result.distinct_vectors()) == 3
