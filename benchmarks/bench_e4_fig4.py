"""E4 benchmarks -- Fig. 4 / eqs. (4.2)-(4.5): the time-optimal design.

Times feasibility checking, conflict detection, optimal-schedule search and
full machine execution on the Fig. 4 array; regenerates the E4 report.
"""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments import e4_fig4
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.mapping import check_feasibility, designs
from repro.mapping.conflicts import is_conflict_free
from repro.mapping.schedule import find_optimal_schedule


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    data = e4_fig4.run()
    report_writer(
        "E4-fig4-time-optimal-design",
        e4_fig4.report(data),
        # JSON-safe subset: drop the (object-heavy) per-case details.
        {"rows": data["rows"], "ok": data["ok"], "backend": data["backend"]},
    )


U, P = 3, 3
BINDING = {"u": U, "p": P}


@pytest.fixture(scope="module")
def alg():
    return matmul_bit_level(U, P, "II")


def test_bench_feasibility_check(benchmark, alg):
    rep = benchmark(
        check_feasibility,
        designs.fig4_mapping(P),
        alg,
        BINDING,
        designs.fig4_primitives(P),
    )
    assert rep.feasible


def test_bench_conflict_check(benchmark, alg):
    ok = benchmark(
        is_conflict_free, designs.fig4_mapping(P), alg.index_set, BINDING
    )
    assert ok


def test_bench_optimal_schedule_search(benchmark, alg):
    best = benchmark(find_optimal_schedule, alg, BINDING, 2)
    assert best is not None and best[1] == designs.t_fig4(U, P)


def test_bench_machine_run(benchmark):
    machine = BitLevelMatmulMachine(U, P, designs.fig4_mapping(P), "II")
    x = [[(i * 3 + j) % 8 for j in range(U)] for i in range(U)]
    y = [[(i + 2 * j + 1) % 8 for j in range(U)] for i in range(U)]

    out = benchmark(machine.run, x, y)
    assert out.sim.makespan == designs.t_fig4(U, P)
