"""Benchmark: symbolic (closed-form) analysis vs concrete enumeration.

Times :func:`repro.symbolic.analyze_symbolic` -- the one-time parametric
solve and the O(1) instantiation of its closed form -- against the
concrete analyzer (:func:`repro.depanalysis.analyze`) on the same
bit-level matmul programs, asserting instance-count identity at every
cross-validated size.  The headline number is the instantiation latency
at ``u = p = 64/256/1024`` (flat in size, milliseconds) against the
concrete enumeration cost at the largest size concrete analysis can
still afford (``u = p = 8``, seconds).

Besides the pytest-benchmark kernels, this module doubles as a script:

* ``python benchmarks/bench_symbolic.py --smoke`` solves once, checks
  instantiation against concrete analysis at two small sizes, and
  asserts a >= 2x instantiate-vs-concrete speedup plus a sub-second
  ``u = p = 1024`` answer -- the CI guard.
* ``python benchmarks/bench_symbolic.py --record`` measures the solve,
  the instantiation latency ladder, and the concrete reference at
  ``u = p = 8`` (expecting the symbolic path >= 100x faster), verifies
  instance counts at every rung, and updates ``BENCH_symbolic.json``
  at the repo root.
"""

import argparse
import json
import pathlib
import time

import pytest

from repro import obs
from repro.depanalysis import AnalysisConfig, analyze
from repro.experiments.tables import format_table
from repro.ir.expand import expand_bit_level
from repro.structures.params import S
from repro.symbolic import analyze_symbolic, clear_memo

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_symbolic.json"

_MATMUL_H = ([0, 1, 0], [1, 0, 0], [0, 0, 1])

#: Sizes where the closed form is cross-checked against concrete
#: enumeration (the last is also the concrete reference timing).
CROSSVAL_SIZES = ((3, 2), (4, 4), (6, 6), (8, 8))

#: The instantiation-latency ladder: flat in size is the whole point.
LADDER = (64, 256, 1024)


def _symbolic_program(expansion="II"):
    h1, h2, h3 = _MATMUL_H
    return expand_bit_level(
        h1, h2, h3, [1, 1, 1], [S("u")] * 3, S("p"), expansion
    )


def _concrete_program(u, p, expansion="II"):
    h1, h2, h3 = _MATMUL_H
    return expand_bit_level(h1, h2, h3, [1, 1, 1], [u, u, u], p, expansion)


def _timed_solve(program, repeats=1):
    """Best-of-N parametric solve (memo cleared so every run is real)."""
    best = result = None
    for _ in range(repeats):
        clear_memo()
        t0 = time.perf_counter()
        result = analyze_symbolic(program, cache=False)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _timed_instantiate(result, u, p, repeats=3):
    best = summary = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        summary = result.summary({"u": u, "p": p})
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, summary


def _timed_concrete(u, p, repeats=1):
    program = _concrete_program(u, p)
    config = AnalysisConfig(cache=False)
    best = result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = analyze(program, {"p": p}, method="enumerate", config=config)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _assert_identical(summary, concrete, label):
    assert summary["instances"] == len(concrete.instances), (
        f"{label}: symbolic {summary['instances']} vs concrete "
        f"{len(concrete.instances)} instances"
    )
    want_vectors = sorted({inst.vector for inst in concrete.instances})
    assert sorted(summary["distinct_vectors"]) == want_vectors, (
        f"{label}: distinct vectors diverged"
    )


# -- pytest-benchmark kernels -----------------------------------------------

@pytest.fixture(scope="module")
def solved():
    clear_memo()
    return analyze_symbolic(_symbolic_program(), cache=False)


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    t_solve, result = _timed_solve(_symbolic_program())
    rows = []
    data_rows = []
    for u in LADDER:
        t_i, summary = _timed_instantiate(result, u, u)
        rows.append((u, u, summary["instances"], f"{t_i * 1e3:.2f}"))
        data_rows.append({
            "u": u, "p": u, "instances": summary["instances"],
            "instantiate_ms": round(t_i * 1e3, 3),
        })
    text = format_table(
        ["u", "p", "instances", "instantiate ms"],
        rows,
        title=(f"Symbolic analysis: {len(result.families)} families solved "
               f"in {t_solve * 1e3:.1f} ms, then O(1) instantiation"),
    )
    report_writer(
        "symbolic-analysis", text,
        data={"solve_s": round(t_solve, 4), "families": len(result.families),
              "rows": data_rows},
    )


def test_bench_solve(benchmark):
    program = _symbolic_program()

    def run():
        clear_memo()
        return analyze_symbolic(program, cache=False)

    result = benchmark(run)
    assert result.closed_form


def test_bench_instantiate_1024(benchmark, solved):
    summary = benchmark(solved.summary, {"u": 1024, "p": 1024})
    assert summary["instances"] > 4 * 10**15


def test_bench_concrete_reference(benchmark):
    _, result = benchmark(_timed_concrete, 3, 2)
    assert result.stats["instances"] > 0


# -- script modes -----------------------------------------------------------

def _smoke() -> int:
    t_solve, result = _timed_solve(_symbolic_program())
    assert result.closed_form, "matmul family must solve in closed form"
    for u, p in ((3, 2), (4, 4)):
        t_c, concrete = _timed_concrete(u, p)
        t_i, summary = _timed_instantiate(result, u, p)
        _assert_identical(summary, concrete, f"u={u} p={p}")
    speedup = t_c / t_i
    t_big, big = _timed_instantiate(result, 1024, 1024)
    print(f"smoke: solve {t_solve * 1e3:.1f} ms  u=4 p=4 concrete "
          f"{t_c * 1e3:.1f} ms  instantiate {t_i * 1e3:.2f} ms "
          f"({speedup:.1f}x)  u=p=1024 {t_big * 1e3:.2f} ms "
          f"({big['instances']} instances)  identical=True")
    assert speedup >= 2.0, (
        f"instantiate speedup {speedup:.2f}x below the 2x smoke floor"
    )
    assert t_big < 1.0, (
        f"u=p=1024 instantiation took {t_big:.2f}s; closed form must be O(1)"
    )
    return 0


def _record(repeats: int) -> int:
    print(f"solving the parametric matmul system (best of {repeats})...")
    t_solve, result = _timed_solve(_symbolic_program(), repeats=repeats)
    assert result.closed_form
    print(f"  {len(result.families)} families in {t_solve * 1e3:.1f} ms")

    print(f"cross-validating against concrete enumeration at "
          f"{list(CROSSVAL_SIZES)}...")
    crossval = []
    t_concrete = concrete = None
    for u, p in CROSSVAL_SIZES:
        t_concrete, concrete = _timed_concrete(u, p)
        t_i, summary = _timed_instantiate(result, u, p, repeats=repeats)
        _assert_identical(summary, concrete, f"u={u} p={p}")
        crossval.append({
            "u": u, "p": p, "instances": len(concrete.instances),
            "concrete_s": round(t_concrete, 4),
            "instantiate_ms": round(t_i * 1e3, 3),
            "identical": True,
        })
        print(f"  u={u} p={p}: concrete {t_concrete * 1e3:.1f} ms  "
              f"instantiate {t_i * 1e3:.2f} ms  identical=True")

    u_ref, p_ref = CROSSVAL_SIZES[-1]
    t_ref_inst, _ = _timed_instantiate(result, u_ref, p_ref, repeats=repeats)
    speedup = t_concrete / t_ref_inst
    print(f"reference u={u_ref} p={p_ref}: {speedup:.0f}x symbolic vs "
          f"concrete")

    print(f"measuring the instantiation ladder {list(LADDER)}...")
    ladder = {}
    for u in LADDER:
        t_i, summary = _timed_instantiate(result, u, u, repeats=repeats)
        ladder[f"u{u}p{u}"] = {
            "instantiate_ms": round(t_i * 1e3, 3),
            "instances": summary["instances"],
            "distinct_vectors": len(summary["distinct_vectors"]),
        }
        print(f"  u=p={u}: {t_i * 1e3:.2f} ms, "
              f"{summary['instances']} instances")

    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data.update({
        "instance": {
            "algorithm": "bit-level matmul (add-shift, expansion II)",
            "note": "parametric solve with u, p free; closed-form "
                    "instantiation is O(1) in both",
        },
        "environment": obs.environment_info(),
        "solve": {
            "seconds": round(t_solve, 4),
            "families": len(result.families),
            "closed_form": True,
        },
        "instantiate": ladder,
        "concrete_reference": {
            "u": u_ref, "p": p_ref, "method": "enumerate",
            "seconds": round(t_concrete, 4),
            "instances": len(concrete.instances),
        },
        "speedup_symbolic_vs_concrete": round(speedup, 2),
        "crossval": crossval,
    })
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_FILE}")
    assert speedup >= 100.0, (
        f"symbolic speedup {speedup:.1f}x below the 100x record floor"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true",
                      help="solve + two cross-validated sizes; assert "
                      "identity, >= 2x, and sub-second u=p=1024")
    mode.add_argument("--record", action="store_true",
                      help="measure the solve, ladder and concrete "
                      "reference; update BENCH_symbolic.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats for --record")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    return _record(args.repeats)


if __name__ == "__main__":
    raise SystemExit(main())
