"""Benchmark: the compiled backend vs wavefront and pointwise.

Times the ``compiled`` per-design codegen engine against the other two
backends on the same bit-level matmul instances and checks they agree
exactly -- same product, same :class:`SimulationResult`, same
``machine.*`` metrics -- so the speedup is measured on provably
identical work.  Also measures the two compilation costs the cache
amortizes: the cold compile and the warm artifact-store load.

Besides the pytest-benchmark kernels, this module doubles as a script:

* ``python benchmarks/bench_compiled.py --smoke`` runs the u=p=8
  add-shift instance on all three backends, asserts identical results
  and a >= 3x compiled-vs-wavefront speedup -- the CI guard.
* ``python benchmarks/bench_compiled.py --record`` measures the same
  instance plus cold-compile / warm-cache-load timings and updates
  ``BENCH_compiled.json`` at the repo root.
"""

import argparse
import json
import os
import pathlib
import random
import tempfile
import time

import pytest

from repro import obs
from repro.compile.plan import clear_plan_memo
from repro.compile.runner import clear_program_memo
from repro.experiments.tables import format_table
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.mapping import designs

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_compiled.json"


def _operands(u, p, seed=0):
    rng = random.Random(seed)
    x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    return x, y


def _timed_run(u, p, backend, repeats=3, expansion="II", design="fig4",
               warmup=0):
    """Best-of-N wall clock plus the (identical) run and metrics.

    Timing happens without an active metrics registry (per-PE gauge
    emission is a backend-invariant constant that would dilute the
    engine ratio); one extra collected run supplies the metrics for the
    identity assertions.
    """
    x, y = _operands(u, p)
    mapping = (
        designs.fig5_mapping(p) if design == "fig5" else designs.fig4_mapping(p)
    )
    machine = BitLevelMatmulMachine(u, p, mapping, expansion, backend=backend)
    for _ in range(warmup):
        machine.run(x, y)  # compile/allocator warm-up outside the clock
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        machine.run(x, y)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    with obs.collecting() as reg:
        out = machine.run(x, y)
    metrics = obs.metrics_dict(reg)
    return best, out, metrics


def _assert_identical(runs, metrics, label):
    """``runs``/``metrics`` keyed by backend; pointwise is the reference."""
    ref = runs["pointwise"]
    m_ref = metrics["pointwise"]
    for backend, run in runs.items():
        if backend == "pointwise":
            continue
        m = metrics[backend]
        assert ref.product == run.product, f"{label}/{backend}: product diverged"
        assert ref.sim == run.sim, f"{label}/{backend}: result diverged"
        assert m_ref["counters"] == m["counters"], (
            f"{label}/{backend}: counters diverged"
        )
        assert m_ref["gauges"] == m["gauges"], (
            f"{label}/{backend}: gauges diverged"
        )


def _compile_timings(u, p):
    """(cold_compile_s, warm_cache_load_s): one full run each, the first
    with every memo and cache empty, the second loading the kernel
    payload from a fresh artifact store."""
    x, y = _operands(u, p)
    mapping = designs.fig4_mapping(p)

    def run_once():
        machine = BitLevelMatmulMachine(u, p, mapping, "II", backend="compiled")
        return machine.run(x, y)

    saved = os.environ.pop("REPRO_CACHE_DIR", None)
    try:
        cold = None
        for _ in range(2):
            clear_program_memo()
            clear_plan_memo()
            t0 = time.perf_counter()
            run_once()
            elapsed = time.perf_counter() - t0
            cold = elapsed if cold is None else min(cold, elapsed)

        with tempfile.TemporaryDirectory() as cache_dir:
            os.environ["REPRO_CACHE_DIR"] = cache_dir
            clear_program_memo()
            run_once()  # populate the store
            warm = None
            for _ in range(2):
                clear_program_memo()  # forget the program, keep the disk entry
                t0 = time.perf_counter()
                run_once()
                elapsed = time.perf_counter() - t0
                warm = elapsed if warm is None else min(warm, elapsed)
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
        if saved is not None:
            os.environ["REPRO_CACHE_DIR"] = saved
    return cold, warm


def _three_way(u, p, repeats):
    runs, metrics, times = {}, {}, {}
    for backend in ("pointwise", "wavefront", "compiled"):
        # The fast engines run in a few ms where allocator/frequency
        # warm-up dominates the first several iterations; give them
        # untimed warm-up runs and a deeper best-of.
        reps = 1 if backend == "pointwise" else max(repeats, 5)
        warm = 0 if backend == "pointwise" else 3
        times[backend], runs[backend], metrics[backend] = _timed_run(
            u, p, backend, repeats=reps, warmup=warm
        )
    _assert_identical(runs, metrics, f"u={u} p={p}")
    return runs, metrics, times


# -- pytest-benchmark kernels -----------------------------------------------

U, P = 4, 4
X, Y = _operands(U, P)


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    rows = []
    data_rows = []
    for u, p in ((4, 4), (6, 6)):
        t_wf, run_wf, m_wf = _timed_run(u, p, "wavefront", repeats=2)
        t_c, run_c, m_c = _timed_run(u, p, "compiled", repeats=2)
        assert run_wf.product == run_c.product
        assert run_wf.sim == run_c.sim
        assert m_wf["counters"] == m_c["counters"]
        rows.append(
            (u, p, run_wf.sim.computations, f"{t_wf * 1e3:.1f}",
             f"{t_c * 1e3:.1f}", f"{t_wf / t_c:.1f}x")
        )
        data_rows.append({
            "u": u, "p": p, "points": run_wf.sim.computations,
            "wavefront_s": round(t_wf, 4), "compiled_s": round(t_c, 4),
            "speedup": round(t_wf / t_c, 2), "identical": True,
        })
    text = format_table(
        ["u", "p", "points", "wavefront ms", "compiled ms", "speedup"],
        rows,
        title="Compiled backend: add-shift bit-level matmul (fig4, exp II)",
    )
    report_writer(
        "compiled-backend", text,
        data={"backend": "compiled-vs-wavefront", "rows": data_rows},
    )


def test_bench_compiled_backend(benchmark):
    machine = BitLevelMatmulMachine(
        U, P, designs.fig4_mapping(P), "II", backend="compiled"
    )
    machine.run(X, Y)  # compile outside the timed region
    out = benchmark(machine.run, X, Y)
    assert out.sim.makespan == designs.t_fig4(U, P)


def test_bench_compiled_cold_compile(benchmark):
    mapping = designs.fig4_mapping(P)

    def cold():
        clear_program_memo()
        machine = BitLevelMatmulMachine(U, P, mapping, "II", backend="compiled")
        return machine.run(X, Y)

    out = benchmark(cold)
    assert out.sim.makespan == designs.t_fig4(U, P)


# -- script modes -----------------------------------------------------------

def _smoke() -> int:
    u = p = 8
    runs, _, times = _three_way(u, p, repeats=3)
    speedup_wf = times["wavefront"] / times["compiled"]
    speedup_pw = times["pointwise"] / times["compiled"]
    print(f"smoke: u={u} p={p} ({runs['pointwise'].sim.computations} points)  "
          f"pointwise {times['pointwise'] * 1e3:.1f} ms  "
          f"wavefront {times['wavefront'] * 1e3:.1f} ms  "
          f"compiled {times['compiled'] * 1e3:.1f} ms  "
          f"speedup {speedup_wf:.1f}x vs wavefront, {speedup_pw:.1f}x vs "
          f"pointwise  identical=True")
    assert speedup_wf >= 3.0, (
        f"compiled speedup {speedup_wf:.2f}x vs wavefront is below the "
        f"3x smoke floor"
    )
    return 0


def _record(repeats: int) -> int:
    u = p = 8
    print(f"recording u={u} p={p} add-shift instance (best of {repeats})...")
    runs, metrics, times = _three_way(u, p, repeats)
    speedup_wf = times["wavefront"] / times["compiled"]
    speedup_pw = times["pointwise"] / times["compiled"]
    print(f"pointwise: {times['pointwise']:.3f}s  "
          f"wavefront: {times['wavefront']:.3f}s  "
          f"compiled: {times['compiled']:.4f}s  "
          f"speedup {speedup_wf:.1f}x / {speedup_pw:.1f}x  identical=True")

    cold, warm = _compile_timings(u, p)
    print(f"cold compile+run: {cold * 1e3:.1f} ms  "
          f"warm cache load+run: {warm * 1e3:.1f} ms")

    m_c = metrics["compiled"]
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data.update({
        "instance": {
            "algorithm": "bit-level matmul (add-shift lattice)",
            "u": u, "p": p, "design": "fig4", "expansion": "II",
            "points": runs["pointwise"].sim.computations,
        },
        "environment": obs.environment_info(),
        "engine": {
            "pointwise": {"seconds": round(times["pointwise"], 4)},
            "wavefront": {"seconds": round(times["wavefront"], 4)},
            "compiled": {
                "seconds": round(times["compiled"], 4),
                "cold_compile_seconds": round(cold, 4),
                "warm_cache_load_seconds": round(warm, 4),
                "store_reads": m_c["counters"].get("machine.store_reads"),
                "store_writes": m_c["counters"].get("machine.store_writes"),
            },
            "results_identical_across_backends": True,
            "speedup_compiled_vs_wavefront": round(speedup_wf, 2),
            "speedup_compiled_vs_pointwise": round(speedup_pw, 2),
        },
    })
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_FILE}")
    assert speedup_wf >= 3.0, (
        f"compiled speedup {speedup_wf:.2f}x vs wavefront is below the "
        f"3x record floor"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true",
                      help="u=p=8 on all three backends; assert equal "
                           "results and >= 3x over wavefront")
    mode.add_argument("--record", action="store_true",
                      help="measure u=p=8 plus cold-compile and warm-cache "
                           "timings; update BENCH_compiled.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats for --record (best-of)")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    return _record(args.repeats)


if __name__ == "__main__":
    raise SystemExit(main())
