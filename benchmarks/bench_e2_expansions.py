"""E2 benchmarks -- Fig. 3 / eqs. (3.8)-(3.9): expansions of the 1-D model.

Times the compositional derivation, the cross-validation, and the functional
evaluators under both expansions; regenerates the E2 report.
"""

import pytest

from repro.expansion.semantics import BitLevelEvaluator
from repro.expansion.theorem31 import bit_level_from_vectors
from repro.expansion.verify import verify_theorem31
from repro.experiments import e2_expansions


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    report_writer("E2-fig3-expansions", e2_expansions.report())


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bench_compose_1d(benchmark, expansion):
    alg = benchmark(
        bit_level_from_vectors, [1], [1], [1], [1], [16], 8, expansion
    )
    assert alg.dim == 3


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bench_verify_1d(benchmark, expansion):
    rep = benchmark(
        verify_theorem31, [1], [1], [1], [1], [3], 3, expansion
    )
    assert rep.matches


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bench_evaluator_stream(benchmark, expansion):
    ev = BitLevelEvaluator(6, expansion)
    xs = list(range(1, 17))
    ys = list(range(17, 1, -1))
    mask = (1 << 11) - 1
    result = benchmark(ev.accumulate, xs, ys)
    assert result == sum(a * b for a, b in zip(xs, ys)) & mask
