"""Ablation: Expansion I vs Expansion II (Section 3.2's discussion).

The paper argues Expansion I is faster (partial sums forwarded immediately,
``d̄₃`` uniform so the schedule need not wait for final bits) and more
computationally uniform (at most three summands except at ``j_n = u_n``,
versus four-five on Expansion II's ``i₁ = p`` hyperplane).  This ablation
quantifies both:

* best achievable linear-schedule length for each expansion's structure;
* the summand-count distribution over all index points (load balance);
* evaluator throughput under each expansion.
"""

import pytest

from repro.expansion.semantics import BitLevelEvaluator
from repro.expansion.theorem31 import bit_level_from_vectors
from repro.experiments.tables import format_table
from repro.mapping.schedule import find_optimal_schedule


def summand_histogram(p: int, expansion: str, n_iter: int = 6) -> dict[int, int]:
    """Histogram of per-point summand counts over a full accumulation."""
    ev = BitLevelEvaluator(p, expansion)
    xs = [(3 * k + 1) % (1 << p) for k in range(n_iter)]
    ys = [(5 * k + 2) % (1 << p) for k in range(n_iter)]
    ev.accumulate(xs, ys)
    return dict(ev.summand_histogram)


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    rows = []
    for exp in ("I", "II"):
        alg = bit_level_from_vectors([1], [1], [1], [1], [4], 3, exp)
        best = find_optimal_schedule(alg, {"u": 4, "p": 3}, coeff_bound=2)
        hist = summand_histogram(3, exp)
        heavy = sum(v for k, v in hist.items() if k >= 4)
        total = sum(hist.values())
        rows.append(
            (exp, best[1] if best else "-", str(best[0]) if best else "-",
             f"{heavy}/{total}", max(hist))
        )
    text = format_table(
        ["expansion", "best schedule length", "Π*",
         "points with >=4 summands", "max summands"],
        rows,
        title="Ablation: Expansion I vs II (1-D model, u=4, p=3)",
    )
    report_writer("ablation-expansions", text)


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bench_optimal_schedule(benchmark, expansion):
    alg = bit_level_from_vectors([1], [1], [1], [1], [4], 3, expansion)
    best = benchmark(find_optimal_schedule, alg, {"u": 4, "p": 3}, 2)
    assert best is not None


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bench_evaluator(benchmark, expansion):
    ev = BitLevelEvaluator(5, expansion)
    xs = list(range(1, 11))
    ys = list(range(11, 1, -1))
    benchmark(ev.accumulate, xs, ys)


def test_expansion1_schedules_no_worse(report_writer):
    """Expansion I's structure admits a schedule at least as fast as II's."""
    results = {}
    for exp in ("I", "II"):
        alg = bit_level_from_vectors([1], [1], [1], [1], [4], 3, exp)
        best = find_optimal_schedule(alg, {"u": 4, "p": 3}, coeff_bound=2)
        assert best is not None
        results[exp] = best[1]
    assert results["I"] <= results["II"]
