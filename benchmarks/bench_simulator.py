"""Benchmark: pointwise vs wavefront simulation backends.

Times the space-time executor's two engines on the same bit-level matmul
instances and checks they agree exactly -- same product, same
:class:`SimulationResult`, same ``machine.*`` metrics -- so the speedup is
measured on provably identical work.

Besides the pytest-benchmark kernels, this module doubles as a script:

* ``python benchmarks/bench_simulator.py --smoke [--metrics-out F]`` runs
  a small add-shift instance on both backends, asserts identical results
  and a >= 3x wavefront speedup -- the CI guard.
* ``python benchmarks/bench_simulator.py --record`` measures the p=8/u=8
  add-shift instance on both backends (expecting >= 10x), runs p=16/u=16
  on the wavefront engine, and updates ``BENCH_simulator.json`` at the
  repo root (an existing baseline entry is preserved).
"""

import argparse
import json
import pathlib
import random
import time

import pytest

from repro import obs
from repro.experiments.tables import format_table
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.wordlevel import WordLevelMatmulMachine
from repro.mapping import designs

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _operands(u, p, seed=0):
    rng = random.Random(seed)
    x = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
    return x, y


def _timed_run(u, p, backend, repeats=3, expansion="II", design="fig4"):
    """Best-of-N wall clock plus the (identical) run and metrics."""
    x, y = _operands(u, p)
    mapping = (
        designs.fig5_mapping(p) if design == "fig5" else designs.fig4_mapping(p)
    )
    machine = BitLevelMatmulMachine(u, p, mapping, expansion, backend=backend)
    best = None
    out = None
    metrics = None
    for _ in range(repeats):
        with obs.collecting() as reg:
            t0 = time.perf_counter()
            out = machine.run(x, y)
            elapsed = time.perf_counter() - t0
        metrics = obs.metrics_dict(reg)
        best = elapsed if best is None else min(best, elapsed)
    return best, out, metrics


def _assert_identical(run_pw, m_pw, run_wf, m_wf, label):
    assert run_pw.product == run_wf.product, f"{label}: product diverged"
    assert run_pw.sim == run_wf.sim, f"{label}: SimulationResult diverged"
    assert m_pw["counters"] == m_wf["counters"], f"{label}: counters diverged"
    assert m_pw["gauges"] == m_wf["gauges"], f"{label}: gauges diverged"


# -- pytest-benchmark kernels -----------------------------------------------

U, P = 4, 4
X, Y = _operands(U, P)


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    rows = []
    data_rows = []
    for u, p in ((4, 4), (6, 6)):
        t_pw, run_pw, m_pw = _timed_run(u, p, "pointwise", repeats=1)
        t_wf, run_wf, m_wf = _timed_run(u, p, "wavefront", repeats=1)
        _assert_identical(run_pw, m_pw, run_wf, m_wf, f"u={u} p={p}")
        rows.append(
            (u, p, run_pw.sim.computations, f"{t_pw * 1e3:.1f}",
             f"{t_wf * 1e3:.1f}", f"{t_pw / t_wf:.1f}x")
        )
        data_rows.append({
            "u": u, "p": p, "points": run_pw.sim.computations,
            "pointwise_s": round(t_pw, 4), "wavefront_s": round(t_wf, 4),
            "speedup": round(t_pw / t_wf, 2), "identical": True,
        })
    text = format_table(
        ["u", "p", "points", "pointwise ms", "wavefront ms", "speedup"],
        rows,
        title="Simulator backends: add-shift bit-level matmul (fig4, exp II)",
    )
    report_writer(
        "simulator-backends", text,
        data={"backend": "wavefront-vs-pointwise", "rows": data_rows},
    )


def test_bench_pointwise_backend(benchmark):
    machine = BitLevelMatmulMachine(
        U, P, designs.fig4_mapping(P), "II", backend="pointwise"
    )
    out = benchmark(machine.run, X, Y)
    assert out.sim.makespan == designs.t_fig4(U, P)


def test_bench_wavefront_backend(benchmark):
    machine = BitLevelMatmulMachine(
        U, P, designs.fig4_mapping(P), "II", backend="wavefront"
    )
    out = benchmark(machine.run, X, Y)
    assert out.sim.makespan == designs.t_fig4(U, P)


def test_bench_wavefront_word_level(benchmark):
    machine = WordLevelMatmulMachine(8, 4, "carry-save", backend="wavefront")
    x, y = _operands(8, 4, seed=1)
    out = benchmark(machine.run, x, y)
    ref = [
        [sum(x[i][k] * y[k][j] for k in range(8)) for j in range(8)]
        for i in range(8)
    ]
    assert out.product == ref


# -- script modes -----------------------------------------------------------

def _smoke(metrics_out: str | None) -> int:
    u = p = 6
    t_pw, run_pw, m_pw = _timed_run(u, p, "pointwise")
    t_wf, run_wf, m_wf = _timed_run(u, p, "wavefront")
    _assert_identical(run_pw, m_pw, run_wf, m_wf, f"u={u} p={p}")
    speedup = t_pw / t_wf
    print(f"smoke: u={u} p={p} ({run_pw.sim.computations} points)  "
          f"pointwise {t_pw * 1e3:.1f} ms  wavefront {t_wf * 1e3:.1f} ms  "
          f"speedup {speedup:.1f}x  identical=True")
    if metrics_out:
        pathlib.Path(metrics_out).write_text(
            json.dumps(m_wf, indent=2, sort_keys=True) + "\n"
        )
    assert speedup >= 3.0, (
        f"wavefront speedup {speedup:.2f}x below the 3x smoke floor"
    )
    return 0


def _record(repeats: int) -> int:
    u = p = 8
    print(f"recording u={u} p={p} add-shift instance (best of {repeats})...")
    t_pw, run_pw, m_pw = _timed_run(u, p, "pointwise", repeats)
    t_wf, run_wf, m_wf = _timed_run(u, p, "wavefront", repeats)
    _assert_identical(run_pw, m_pw, run_wf, m_wf, f"u={u} p={p}")
    speedup = t_pw / t_wf
    print(f"pointwise: {t_pw:.3f}s  wavefront: {t_wf:.3f}s  "
          f"speedup {speedup:.1f}x  identical=True")

    print("recording u=16 p=16 wavefront-only scale run...")
    t_big, run_big, _ = _timed_run(16, 16, "wavefront", repeats=1)
    x, y = _operands(16, 16)
    mask = (1 << (2 * 16 - 1)) - 1
    ref = [
        [sum(x[i][k] * y[k][j] for k in range(16)) & mask for j in range(16)]
        for i in range(16)
    ]
    assert run_big.product == ref, "p=16/u=16 product mismatch"
    print(f"u=16 p=16: {run_big.sim.computations} points in {t_big:.2f}s, "
          f"product exact")

    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data.setdefault("baseline", {
        "backend": "pointwise",
        "seconds": round(t_pw, 3),
        "note": "dict-backed per-point interpreter, p=8/u=8 add-shift",
    })
    data.update({
        "instance": {
            "algorithm": "bit-level matmul (add-shift lattice)",
            "u": u, "p": p, "design": "fig4", "expansion": "II",
            "points": run_pw.sim.computations,
        },
        "environment": obs.environment_info(),
        "engine": {
            "pointwise": {
                "seconds": round(t_pw, 3),
                "store_reads": m_pw["counters"].get("machine.store_reads"),
                "store_writes": m_pw["counters"].get("machine.store_writes"),
            },
            "wavefront": {
                "seconds": round(t_wf, 3),
                "store_reads": m_wf["counters"].get("machine.store_reads"),
                "store_writes": m_wf["counters"].get("machine.store_writes"),
            },
            "results_identical_across_backends": True,
            "speedup_wavefront_vs_pointwise": round(speedup, 2),
        },
        "scale_run": {
            "u": 16, "p": 16, "backend": "wavefront",
            "points": run_big.sim.computations,
            "seconds": round(t_big, 3),
            "product_exact": True,
        },
    })
    baseline = data["baseline"]["seconds"]
    data["speedup_vs_baseline"] = round(baseline / t_wf, 2)
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_FILE}")
    print(f"speedup vs pointwise baseline ({baseline}s): {baseline / t_wf:.1f}x")
    assert speedup >= 10.0, (
        f"wavefront speedup {speedup:.2f}x below the 10x record floor"
    )
    assert t_big < 10.0, f"p=16/u=16 run took {t_big:.1f}s (>= 10s)"
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true",
                      help="small instance on both backends; assert equal "
                           "results and >= 3x speedup")
    mode.add_argument("--record", action="store_true",
                      help="measure p=8/u=8 on both backends plus the "
                           "p=16/u=16 scale run; update BENCH_simulator.json")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the smoke run's wavefront metrics dict")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats for --record (best-of)")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args.metrics_out)
    return _record(args.repeats)


if __name__ == "__main__":
    raise SystemExit(main())
