"""E1 benchmarks -- Fig. 1 / eqs. (3.1)-(3.4): the add-shift multiplier.

Times the lattice evaluator and the general dependence analysis that
recovers ``D_as``, and regenerates the E1 report.
"""

import pytest

from repro.arith.addshift import AddShiftMultiplier
from repro.depanalysis import analyze
from repro.experiments import e1_addshift
from repro.ir.builders import addshift_pipelined


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    report_writer("E1-fig1-addshift", e1_addshift.report())


def test_bench_addshift_multiply_p8(benchmark):
    mult = AddShiftMultiplier(8)
    result = benchmark(mult.multiply, 173, 219)
    assert result == 173 * 219


def test_bench_addshift_multiply_p16(benchmark):
    mult = AddShiftMultiplier(16)
    result = benchmark(mult.multiply, 51234, 60001)
    assert result == 51234 * 60001


def test_bench_analyze_addshift_program(benchmark):
    prog = addshift_pipelined(6)

    def run():
        return analyze(prog, {"p": 6}, method="exact")

    result = benchmark(run)
    assert set(result.distinct_vectors()) == {(1, 0), (0, 1), (1, -1)}


def test_bench_analyze_addshift_enumerate(benchmark):
    prog = addshift_pipelined(6)
    result = benchmark(analyze, prog, {"p": 6}, "enumerate")
    assert len(result.distinct_vectors()) == 3
