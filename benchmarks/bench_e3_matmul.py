"""E3 benchmarks -- eqs. (3.12)/(3.13): the bit-level matmul structure.

Times the compositional derivation of the 5-D structure (symbolic and
concrete) and regenerates the E3 report.
"""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments import e3_matmul_structure


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    report_writer("E3-eq312-matmul-structure", e3_matmul_structure.report())


def test_bench_symbolic_derivation(benchmark):
    alg = benchmark(matmul_bit_level)
    assert len(alg.dependences) == 7


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bench_concrete_derivation(benchmark, expansion):
    alg = benchmark(matmul_bit_level, 64, 32, expansion)
    assert alg.index_set.size({"u": 64, "p": 32}) == 64**3 * 32**2


def test_bench_effective_edges_small(benchmark):
    from repro.expansion.verify import effective_edges

    alg = matmul_bit_level(2, 2)
    edges = benchmark(effective_edges, alg, {"u": 2, "p": 2})
    assert edges
