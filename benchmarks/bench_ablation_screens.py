"""Ablation: GCD/Banerjee screening inside the exact analyzer.

The classical screening tests never change the result (they are
conservative), but they prune Diophantine systems before the expensive
in-index-set verification.  This ablation measures the exact analyzer with
and without screening on the paper's programs and reports how many
write/read pairs each screen eliminates.
"""

import pytest

from repro.depanalysis import analyze
from repro.experiments.tables import format_table
from repro.ir.builders import addshift_pipelined, matmul_pipelined
from repro.ir.expand import expand_bit_level

PROGRAMS = {
    "matmul-2.3 (u=4)": (matmul_pipelined(4), {"u": 4}),
    "add-shift-3.3 (p=5)": (addshift_pipelined(5), {"p": 5}),
    "bit-level expII (u=2,p=2)": (
        expand_bit_level([0, 1, 0], [1, 0, 0], [0, 0, 1],
                         [1, 1, 1], [2, 2, 2], 2, "II"),
        {"p": 2},
    ),
}


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    rows = []
    for name, (prog, binding) in PROGRAMS.items():
        with_s = analyze(prog, binding, "exact", use_screens=True)
        without = analyze(prog, binding, "exact", use_screens=False)
        assert set(with_s.instances) == set(without.instances)
        rows.append(
            (
                name,
                with_s.stats["pairs_tested"],
                with_s.stats["gcd_pruned"],
                with_s.stats["banerjee_pruned"],
                with_s.stats["systems_solved"],
                without.stats["systems_solved"],
            )
        )
    text = format_table(
        ["program", "pairs", "gcd pruned", "banerjee pruned",
         "systems (screened)", "systems (bare)"],
        rows,
        title="Ablation: screening tests inside the exact analyzer",
    )
    report_writer("ablation-screens", text)


@pytest.mark.parametrize("use_screens", [True, False],
                         ids=["screened", "bare"])
def test_bench_exact_analyzer(benchmark, use_screens):
    prog, binding = PROGRAMS["bit-level expII (u=2,p=2)"]
    result = benchmark(analyze, prog, binding, "exact", use_screens)
    assert result.instances
