"""E5 benchmarks -- Fig. 5 / eqs. (4.6)-(4.8): the nearest-neighbour design.

Times feasibility and machine execution on the Fig. 5 array; regenerates the
E5 report (including the eq. (4.8) reproduction note).
"""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments import e5_fig5
from repro.machine.array import SystolicArray
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.mapping import check_feasibility, designs


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    data = e5_fig5.run()
    report_writer("E5-fig5-nearest-neighbour-design", e5_fig5.report(data), data)


U, P = 3, 3
BINDING = {"u": U, "p": P}


@pytest.fixture(scope="module")
def alg():
    return matmul_bit_level(U, P, "II")


def test_bench_feasibility_check(benchmark, alg):
    rep = benchmark(
        check_feasibility,
        designs.fig5_mapping(P),
        alg,
        BINDING,
        designs.fig5_primitives(),
    )
    assert rep.feasible


def test_bench_array_construction(benchmark, alg):
    rep = check_feasibility(
        designs.fig5_mapping(P), alg, BINDING, designs.fig5_primitives()
    )

    arr = benchmark(SystolicArray, designs.fig5_mapping(P), alg, BINDING, rep.interconnect)
    assert arr.longest_wire == 1


def test_bench_machine_run(benchmark):
    machine = BitLevelMatmulMachine(U, P, designs.fig5_mapping(P), "II")
    x = [[(i * 3 + j) % 8 for j in range(U)] for i in range(U)]
    y = [[(i + 2 * j + 1) % 8 for j in range(U)] for i in range(U)]

    out = benchmark(machine.run, x, y)
    assert out.sim.makespan == designs.t_fig5(U, P)
