"""E9/E10 benchmarks -- the extension experiments.

E9: free-schedule lower-bound computation (longest dependence chain) and
its agreement with eq. (4.5).  E10 is benchmarked in
``bench_design_search.py``; here we regenerate both reports.
"""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.experiments import e9_bounds, e10_search
from repro.mapping.bounds import free_schedule_time, free_schedule_times


@pytest.fixture(scope="module", autouse=True)
def report(report_writer):
    yield
    report_writer("E9-free-schedule-bound", e9_bounds.report())
    report_writer("E10-design-search", e10_search.report())


@pytest.mark.parametrize("u,p", [(2, 2), (3, 3)])
def test_bench_free_schedule(benchmark, u, p):
    alg = matmul_bit_level(u, p, "II")
    t = benchmark(free_schedule_time, alg, {"u": u, "p": p})
    assert t == 3 * (u - 1) + 3 * (p - 1) + 1


def test_bench_asap_times(benchmark):
    alg = matmul_bit_level(2, 3, "II")
    times = benchmark(free_schedule_times, alg, {"u": 2, "p": 3})
    assert min(times.values()) == 0
