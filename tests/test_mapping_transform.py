"""Tests for repro.mapping.transform (mapping matrices)."""

import pytest

from repro.mapping.designs import fig4_mapping, word_level_mapping
from repro.mapping.transform import MappingMatrix


class TestStructure:
    def test_shape(self):
        t = fig4_mapping(3)
        assert t.k == 3
        assert t.n == 5

    def test_space_and_schedule_split(self):
        t = fig4_mapping(3)
        assert t.space == [[3, 0, 0, 1, 0], [0, 3, 0, 0, 1]]
        assert t.schedule == [1, 1, 1, 2, 1]

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            MappingMatrix([[1, 2], [1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MappingMatrix([])


class TestApplication:
    def test_time_of(self):
        t = fig4_mapping(3)
        assert t.time_of((1, 1, 1, 1, 1)) == 6
        assert t.time_of((3, 3, 3, 3, 3)) == 18

    def test_processor_of(self):
        t = fig4_mapping(3)
        assert t.processor_of((1, 1, 1, 1, 1)) == (4, 4)
        assert t.processor_of((2, 1, 3, 2, 1)) == (8, 4)

    def test_apply(self):
        t = word_level_mapping()
        assert t.apply((2, 3, 1)) == ((2, 3), 6)

    def test_map_vector(self):
        t = fig4_mapping(3)
        # T·d̄₄ = (1, 0, 2): the buffered link of Fig. 4.
        assert t.map_vector([0, 0, 0, 1, 0]) == [1, 0, 2]

    def test_linearity(self):
        t = fig4_mapping(2)
        a, b = (1, 2, 1, 2, 1), (2, 1, 2, 1, 2)
        s = tuple(x + y for x, y in zip(a, b))
        assert t.time_of(s) == t.time_of(a) + t.time_of(b)


class TestPredicates:
    def test_rank_full(self):
        assert fig4_mapping(3).rank() == 3

    def test_rank_deficient(self):
        t = MappingMatrix([[1, 0], [2, 0], [0, 0]])
        assert t.rank() == 1

    def test_coprime(self):
        assert fig4_mapping(3).entries_coprime()
        assert not MappingMatrix([[2, 4], [6, 8]]).entries_coprime()

    def test_equality_hash(self):
        assert fig4_mapping(3) == fig4_mapping(3)
        assert fig4_mapping(3) != fig4_mapping(4)
        assert len({fig4_mapping(3), fig4_mapping(3)}) == 1

    def test_instantiate_identity(self):
        t = fig4_mapping(3)
        assert t.instantiate({"p": 9}) is t

    def test_repr(self):
        assert "T-fig4" in repr(fig4_mapping(2))
