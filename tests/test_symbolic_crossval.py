"""Cross-validation of the symbolic (parametric) dependence analysis.

The contract under test: :func:`repro.symbolic.analyze_symbolic` solves a
program once with ``u``/``p`` free, and ``instantiate(binding)`` must
reproduce the concrete analyzer bit for bit at *every* concrete size --
including the adversarial ones (1, 2, primes, powers of two).  The
sampling harness (``oracle_symbolic``) automates exactly that comparison
over randomized cases; the mutation tests prove the harness would notice
if the symbolic solver were wrong.
"""

import random
import time

import pytest

from repro.depanalysis.analyzer import analyze
from repro.depanalysis.engine import AnalysisConfig
from repro.ir.expand import expand_bit_level
from repro.structures.params import S
from repro.symbolic import (
    SymbolicUnsupported,
    analyze_symbolic,
    clear_memo,
    crosscheck_theorem31,
    solve_symbolic_system,
)
from repro.util.linalg import solve_integer_system
from repro.verify import (
    EDGE_SIZES,
    SYMBOLIC_MUTATIONS,
    VerifyConfig,
    gen_symbolic_case,
    run_symbolic_mutation_check,
    run_verification,
)

NO_CACHE = AnalysisConfig(cache=False)


def symbolic_matmul_program(expansion, dim=3):
    """The paper's bit-level matmul with every size kept free."""
    h = {
        1: ([0, 1], [1, 0], [1, 1]),
        2: ([0, 1], [1, 0], [1, 1]),
        3: ([0, 1, 0], [1, 0, 0], [0, 0, 1]),
    }[dim]
    h1, h2, h3 = ([0, 1], [1, 0], [1, 1]) if dim == 2 else h
    return expand_bit_level(
        h1, h2, h3, (1,) * dim, tuple(S("u") for _ in range(dim)),
        S("p"), expansion,
    )


def assert_bindings_match(symbolic, program, bindings, method="enumerate"):
    """Symbolic instantiation == concrete analysis, bit for bit."""
    for binding in bindings:
        exact = analyze(program, binding, method=method, config=NO_CACHE)
        got = symbolic.instantiate(binding)
        assert [i.key() for i in got.instances] == [
            i.key() for i in exact.instances
        ], f"instance divergence at {binding}"
        summary = symbolic.summary(binding)
        assert summary["instances"] == len(exact.instances), binding
        assert summary["distinct_vectors"] == sorted(
            {i.vector for i in exact.instances}
        ), binding


# ---------------------------------------------------------------------------
# The parametric solver against the concrete one
# ---------------------------------------------------------------------------

class TestSolveSymbolic:
    def _random_system(self, rng):
        m, n = rng.randint(1, 3), rng.randint(1, 3)
        a = [[rng.randint(-3, 3) for _ in range(n)] for _ in range(m)]
        rhs = [
            S("u") * rng.randint(-2, 2) + rng.randint(-4, 4) for _ in range(m)
        ]
        return a, rhs

    def test_matches_concrete_solver_at_many_bindings(self):
        rng = random.Random(11)
        checked = 0
        for _ in range(150):
            a, rhs = self._random_system(rng)
            try:
                sol = solve_symbolic_system(a, rhs)
            except SymbolicUnsupported:
                continue
            for u in range(0, 6):
                binding = {"u": u}
                b = [e.evaluate(binding) for e in rhs]
                concrete = solve_integer_system(a, b)
                if sol is None or not sol.feasible_at(binding):
                    assert concrete is None, (a, b)
                    continue
                assert concrete is not None, (a, b)
                particular, basis = sol.instantiate(binding)
                # The particular solution solves the system ...
                for row, bi in zip(a, b):
                    assert sum(c * z for c, z in zip(row, particular)) == bi
                # ... and the homogeneous bases agree exactly (both come
                # from the same Smith normal form).
                assert basis == tuple(tuple(r) for r in concrete[1])
                checked += 1
        assert checked > 100  # the loop really exercised the comparison

    def test_never_divisible_is_no_solution(self):
        # 2x = 2u + 1: odd rhs, even lhs -- no binding works.
        assert solve_symbolic_system([[2]], [S("u") * 2 + 1]) is None

    def test_param_dependent_congruence_raises(self):
        # 2x = u: solvable only for even u -- no linear closed form.
        with pytest.raises(SymbolicUnsupported):
            solve_symbolic_system([[2]], [S("u")])

    def test_zero_row_becomes_feasibility_predicate(self):
        # 0x = u - 3: solvable exactly when u = 3.
        sol = solve_symbolic_system([[0]], [S("u") - 3])
        assert sol is not None
        assert sol.feasible_at({"u": 3})
        assert not sol.feasible_at({"u": 4})


# ---------------------------------------------------------------------------
# Bit-for-bit cross-validation on the paper's programs
# ---------------------------------------------------------------------------

class TestCrossvalMatmul:
    #: adversarial sizes: 1, 2, primes, powers of two
    BINDINGS_3D = [
        {"u": 1, "p": 1}, {"u": 1, "p": 2}, {"u": 2, "p": 1},
        {"u": 2, "p": 2}, {"u": 3, "p": 2}, {"u": 2, "p": 3},
    ]

    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_full_matmul_matches_exact_analyzer(self, expansion):
        program = symbolic_matmul_program(expansion)
        symbolic = analyze_symbolic(program, cache=False)
        assert symbolic.closed_form
        assert_bindings_match(symbolic, program, self.BINDINGS_3D)

    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_2d_shapes_at_edge_sizes(self, expansion):
        program = symbolic_matmul_program(expansion, dim=2)
        symbolic = analyze_symbolic(program, cache=False)
        bindings = [
            {"u": u, "p": p}
            for u in (1, 2, 3, 4, 5)
            for p in (1, 2, 3)
        ]
        assert_bindings_match(symbolic, program, bindings)

    def test_instantiation_is_size_independent(self):
        program = symbolic_matmul_program("II")
        symbolic = analyze_symbolic(program, cache=False)
        t0 = time.perf_counter()
        small = symbolic.summary({"u": 4, "p": 4})
        huge = symbolic.summary({"u": 1024, "p": 1024})
        elapsed = time.perf_counter() - t0
        # Closed-form counting: answering at u=p=1024 never enumerates the
        # ~4.5e15-instance space (a generous bound; actual cost is ~ms and
        # identical at both sizes).
        assert elapsed < 5.0
        assert small["closed_form"] and huge["closed_form"]
        assert huge["instances"] > 4_000_000_000_000_000
        assert huge["distinct_vectors"] == small["distinct_vectors"]

    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_theorem31_crosscheck(self, expansion):
        report = crosscheck_theorem31(expansion=expansion)
        assert report.ok, report.summary()
        assert report.closed_form
        assert report.bindings_checked >= 5
        assert report.summary().startswith("MATCH")


# ---------------------------------------------------------------------------
# The sampling harness (the >= 200 zero-diff acceptance gate)
# ---------------------------------------------------------------------------

class TestSamplingHarness:
    def test_200_sampled_sizes_zero_diffs(self):
        report = run_verification(
            VerifyConfig(seed=0, cases=200, oracles=("symbolic",))
        )
        (outcome,) = report.outcomes
        assert outcome.cases_run == 200
        assert outcome.passed == 200
        assert report.ok, report.summary()

    def test_generator_is_seed_deterministic(self):
        from repro.verify import SizeEnvelope

        env = SizeEnvelope()
        assert gen_symbolic_case(
            random.Random(7), env
        ) == gen_symbolic_case(random.Random(7), env)

    def test_generator_covers_the_adversarial_corners(self):
        rng = random.Random(0)
        cases = [gen_symbolic_case(rng) for _ in range(200)]
        kinds = {c.kind for c in cases}
        assert kinds == {"matmul", "stride"}
        us = {c.u for c in cases}
        # 1, 2, primes, powers of two all get drawn.
        assert {1, 2, 3, 4} <= us
        assert us <= set(EDGE_SIZES)
        assert 1 in {c.p for c in cases if c.kind == "matmul"}
        # Both congruence outcomes appear: offsets divisible by the
        # stride (a real sparse dependence) and indivisible ones (no
        # dependence at any size).
        strided = [c for c in cases if c.kind == "stride"]
        assert any(c.offset % c.stride == 0 for c in strided)
        assert any(c.offset % c.stride != 0 for c in strided)

    def test_stride_case_congruences_are_load_bearing(self):
        from repro.verify.generator import SymbolicCase

        # s | o: dependence with distance o/s at every size.
        yes = SymbolicCase(kind="stride", u=6, stride=2, offset=4)
        program = yes.build_program()
        symbolic = analyze_symbolic(program, cache=False)
        result = symbolic.instantiate({"u": 6})
        assert {i.vector for i in result.instances} == {(2,)}
        assert_bindings_match(symbolic, program, [{"u": u} for u in (1, 5, 8)])
        # s does not divide o: no dependence at any size.
        no = SymbolicCase(kind="stride", u=6, stride=2, offset=3)
        program = no.build_program()
        symbolic = analyze_symbolic(program, cache=False)
        assert symbolic.families == ()
        assert_bindings_match(symbolic, program, [{"u": u} for u in (1, 5, 8)])


# ---------------------------------------------------------------------------
# Mutation robustness: the harness catches seeded solver bugs
# ---------------------------------------------------------------------------

class TestMutationRobustness:
    @pytest.mark.parametrize("mutation", sorted(SYMBOLIC_MUTATIONS))
    def test_seeded_bug_is_caught_and_shrunk(self, mutation):
        counterexample = run_symbolic_mutation_check(
            mutation, seed=0, cases=40
        )
        assert counterexample is not None, (
            f"the seeded {mutation} bug must produce a counterexample"
        )
        assert counterexample.oracle == "symbolic"
        assert "divergence" in counterexample.detail
        # The shrinker drove the witness to a minimal size.
        assert counterexample.case["u"] <= counterexample.original["u"]
        assert counterexample.case["u"] <= 2

    def test_dropped_congruence_needs_the_stride_cases(self):
        # The matmul programs have identity subscripts (all invariant
        # factors 1), so the dropped-congruence mutant is only visible on
        # a strided system: the witness must be a stride case.
        counterexample = run_symbolic_mutation_check(
            "dropped-congruence", seed=0, cases=40
        )
        assert counterexample.case["kind"] == "stride"
        assert (
            counterexample.case["offset"] % counterexample.case["stride"] != 0
        )

    def test_mutant_state_does_not_leak(self):
        import repro.symbolic.families as families_mod
        import repro.symbolic.solve as solve_mod

        reals = (solve_mod._congruence_quotient, families_mod.shifted_bounds)
        for mutation in SYMBOLIC_MUTATIONS:
            run_symbolic_mutation_check(mutation, seed=0, cases=40)
        # The originals are restored ...
        assert (
            solve_mod._congruence_quotient,
            families_mod.shifted_bounds,
        ) == reals
        # ... and no mutant result survives in the memo: a clean run at a
        # fresh seed passes every case.
        report = run_verification(
            VerifyConfig(seed=99, cases=20, oracles=("symbolic",))
        )
        assert report.ok, report.summary()

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            run_symbolic_mutation_check("nonesuch")

    def test_cli_symbolic_mutation_check(self, capsys):
        from repro.__main__ import main

        rc = main([
            "verify", "--symbolic-mutation", "dropped-congruence",
            "--cases", "40",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mutation check ok" in out
        assert "dropped-congruence" in out


# ---------------------------------------------------------------------------
# Serde + caching of symbolic artifacts
# ---------------------------------------------------------------------------

class TestSerdeAndCache:
    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_payload_round_trip_is_exact(self, expansion):
        import json

        from repro.symbolic.serde import (
            symbolic_result_from_payload,
            symbolic_result_to_payload,
        )

        program = symbolic_matmul_program(expansion)
        result = analyze_symbolic(program, cache=False)
        wire = json.loads(json.dumps(symbolic_result_to_payload(result)))
        again = symbolic_result_from_payload(wire)
        assert again == result
        binding = {"u": 3, "p": 2}
        assert [i.key() for i in again.instantiate(binding).instances] == [
            i.key() for i in result.instantiate(binding).instances
        ]

    def test_unknown_payload_version_rejected(self):
        from repro.symbolic.serde import symbolic_result_from_payload

        with pytest.raises(ValueError, match="version"):
            symbolic_result_from_payload({"version": 999})

    def test_store_round_trip_and_memo(self, tmp_path):
        from repro import obs

        program = symbolic_matmul_program("II")
        clear_memo()
        with obs.collecting() as reg:
            first = analyze_symbolic(
                program, cache=True, cache_dir=str(tmp_path)
            )
            memo_hit = analyze_symbolic(
                program, cache=True, cache_dir=str(tmp_path)
            )
            clear_memo()  # force the on-disk path
            disk_hit = analyze_symbolic(
                program, cache=True, cache_dir=str(tmp_path)
            )
            metrics = obs.metrics_dict(reg)
        assert memo_hit is first
        assert disk_hit == first
        assert metrics["counters"]["symbolic.memo_hits"] == 1
        assert metrics["counters"]["symbolic.cache_hits"] == 1
        binding = {"u": 4, "p": 3}
        assert disk_hit.summary(binding) == first.summary(binding)
        clear_memo()

    def test_symbolic_key_separates_programs(self):
        from repro.cache import symbolic_key

        a = symbolic_matmul_program("I")
        b = symbolic_matmul_program("II")
        assert symbolic_key(a) == symbolic_key(symbolic_matmul_program("I"))
        assert symbolic_key(a) != symbolic_key(b)
