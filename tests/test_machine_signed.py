"""Tests for signed workloads on the unsigned machines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import BitLevelMatmulMachine
from repro.machine.signed import signed_matmul, split_signed
from repro.mapping import designs


class TestSplit:
    def test_basic(self):
        plus, minus = split_signed([[3, -2], [0, -1]])
        assert plus == [[3, 0], [0, 0]]
        assert minus == [[0, 2], [0, 1]]

    def test_reconstruction(self):
        m = [[5, -7, 0], [-1, 2, -3]]
        plus, minus = split_signed(m)
        assert [[p - q for p, q in zip(pr, mr)] for pr, mr in zip(plus, minus)] == m

    def test_nonnegative_parts(self):
        plus, minus = split_signed([[-4, 4]])
        assert all(v >= 0 for row in plus + minus for v in row)


class TestSignedMatmul:
    def test_against_plain_product(self, rng):
        u, p = 2, 4
        machine = BitLevelMatmulMachine(u, p, designs.fig4_mapping(p), "II")
        # Keep magnitudes small so true values fit in [-2^{2p-2}, 2^{2p-2}).
        x = [[rng.randrange(-4, 5) for _ in range(u)] for _ in range(u)]
        y = [[rng.randrange(4) for _ in range(u)] for _ in range(u)]
        got = signed_matmul(
            lambda a, b: machine.run(a, b).product, x, y,
            modulus=1 << (2 * p - 1),
        )
        want = [
            [sum(x[i][k] * y[k][j] for k in range(u)) for j in range(u)]
            for i in range(u)
        ]
        assert got == want

    def test_recentering(self):
        # A runner computing mod 8 with a negative true value.
        def run(a, b):
            return [[(a[0][0] * b[0][0]) % 8]]

        got = signed_matmul(run, [[-3]], [[2]], modulus=8)
        assert got == [[-6 + 8]] or got == [[2]]  # -6 ≡ 2 (mod 8), recentred to 2
        # With a modulus large enough, the result is exact.
        def run16(a, b):
            return [[(a[0][0] * b[0][0]) % 16]]

        assert signed_matmul(run16, [[-3]], [[2]], modulus=16) == [[-6]]

    def test_no_modulus_plain_difference(self):
        def run(a, b):
            return [[a[0][0] * b[0][0]]]

        assert signed_matmul(run, [[-3]], [[5]]) == [[-15]]

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_property_exact_when_in_range(self, data):
        u, p = 2, 4
        machine = BitLevelMatmulMachine(u, p, designs.fig4_mapping(p), "II")
        half = (1 << (2 * p - 1)) // 2
        x = [
            [data.draw(st.integers(-3, 3)) for _ in range(u)]
            for _ in range(u)
        ]
        y = [
            [data.draw(st.integers(0, 7)) for _ in range(u)]
            for _ in range(u)
        ]
        want = [
            [sum(x[i][k] * y[k][j] for k in range(u)) for j in range(u)]
            for i in range(u)
        ]
        assert all(-half <= v < half for row in want for v in row)
        got = signed_matmul(
            lambda a, b: machine.run(a, b).product, x, y,
            modulus=1 << (2 * p - 1),
        )
        assert got == want
