"""Tests for static program validation (repro.ir.validate)."""

import pytest

from repro.ir.builders import (
    matmul_naive,
    matmul_pipelined,
    model_1d,
    word_model,
)
from repro.ir.expand import expand_bit_level
from repro.ir.expr import var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.ir.validate import (
    check_guard_partition,
    check_uniform_shifts,
    extract_model35,
    uniform_shift,
)


class TestUniformShift:
    def test_basic(self):
        j = var("j")
        w = ArrayAccess("x", [j])
        r = ArrayAccess("x", [j - 2])
        assert uniform_shift(w, r, ("j",)) == [2]

    def test_zero_shift(self):
        j = var("j")
        acc = ArrayAccess("x", [j])
        assert uniform_shift(acc, acc, ("j",)) == [0]

    def test_multi_dim(self):
        j1, j2 = var("j1"), var("j2")
        w = ArrayAccess("s", [j1, j2])
        r = ArrayAccess("s", [j1 - 1, j2 + 1])
        assert uniform_shift(w, r, ("j1", "j2")) == [1, -1]

    def test_different_arrays(self):
        j = var("j")
        assert uniform_shift(
            ArrayAccess("x", [j]), ArrayAccess("y", [j]), ("j",)
        ) is None

    def test_non_identity_write(self):
        j = var("j")
        w = ArrayAccess("x", [2 * j])
        r = ArrayAccess("x", [2 * j - 2])
        assert uniform_shift(w, r, ("j",)) is None

    def test_rank_mismatch(self):
        j = var("j")
        assert uniform_shift(
            ArrayAccess("x", [j]), ArrayAccess("x", [j, j]), ("j",)
        ) is None

    def test_symbolic_offset_rejected(self):
        from repro.structures.params import S

        j = var("j")
        w = ArrayAccess("x", [j])
        r = ArrayAccess("x", [j - S("p")])
        assert uniform_shift(w, r, ("j",)) is None


class TestExtractModel35:
    def test_matmul(self):
        shifts = extract_model35(matmul_pipelined(3))
        assert shifts == {
            "x": [0, 1, 0],
            "y": [1, 0, 0],
            "z": [0, 0, 1],
        }

    def test_1d_model(self):
        shifts = extract_model35(model_1d(2, 1, 3, upper=5))
        assert shifts == {"x": [2], "y": [1], "z": [3]}

    def test_general_word_model(self):
        prog = word_model([1, 0], [1, -1], [0, 1], [1, 1], [4, 3])
        assert extract_model35(prog) == {
            "x": [1, 0], "y": [1, -1], "z": [0, 1]
        }

    def test_naive_matmul_rejected(self):
        # Program (2.2) is not in model (3.5) form (x, y unwritten).
        with pytest.raises(ValueError):
            extract_model35(matmul_naive(3))

    def test_missing_in_place_read_rejected(self):
        from repro.structures.indexset import IndexSet

        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [3], ("j",)),
            [
                Statement("S_x", ArrayAccess("x", [j]), [ArrayAccess("x", [j - 1])]),
                Statement("S_y", ArrayAccess("y", [j]), [ArrayAccess("y", [j - 1])]),
                Statement(
                    "S_z",
                    ArrayAccess("z", [j]),
                    [ArrayAccess("z", [j - 1]), ArrayAccess("x", [j - 1])],
                ),
            ],
        )
        with pytest.raises(ValueError, match="in place"):
            extract_model35(prog)


class TestGuardPartition:
    def test_expanded_program_partitions(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, "II")
        result = check_guard_partition(prog, {}, require_exactly_one=False)
        assert result["s"] and result["x"] and result["y"]

    def test_s_written_exactly_once_everywhere(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, "I")
        result = check_guard_partition(prog, {}, require_exactly_one=False)
        assert all(result.values())

    def test_overlap_detected(self):
        from repro.structures.conditions import Eq, TRUE

        j = var("j")
        prog = LoopNest(
            ("j",),
            model_1d(upper=3).index_set,
            [
                Statement("A", ArrayAccess("v", [j]), guard=TRUE),
                Statement("B", ArrayAccess("v", [j]), guard=Eq(0, 2)),
            ],
        )
        assert not check_guard_partition(prog, {})["v"]

    def test_gap_detected_with_exactly_one(self):
        from repro.structures.conditions import Eq

        j = var("j")
        prog = LoopNest(
            ("j",),
            model_1d(upper=3).index_set,
            [Statement("A", ArrayAccess("v", [j]), guard=Eq(0, 1))],
        )
        assert check_guard_partition(prog, {})["v"]
        assert not check_guard_partition(prog, {}, require_exactly_one=True)["v"]


class TestUniformShifts:
    def test_matmul_shifts(self):
        shifts = check_uniform_shifts(matmul_pipelined(3))
        assert shifts[("x", "S_x")] == [0, 1, 0]
        assert shifts[("z", "S_z")] == [0, 0, 1]

    def test_expanded_program_shifts(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, "II")
        shifts = check_uniform_shifts(prog)
        assert shifts[("c", "S_sum")] == [0, 0, 1]
        assert shifts[("s", "S_sum")] == [0, 1, -1]
