"""Tests for schedules, execution time, optimality, and conflict detection."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.mapping.conflicts import (
    enumerate_conflict_pairs,
    find_conflicts,
    is_conflict_free,
)
from repro.mapping.designs import fig4_mapping, fig5_mapping, word_level_mapping
from repro.mapping.schedule import (
    certify_time_optimal,
    execution_time,
    find_optimal_schedule,
    schedule_is_valid,
)
from repro.mapping.transform import MappingMatrix


class TestScheduleValidity:
    def test_matmul_word_schedule(self):
        alg = matmul_word_structure()
        assert schedule_is_valid([1, 1, 1], alg)
        assert not schedule_is_valid([1, 1, 0], alg)  # Π d̄₃ = 0
        assert not schedule_is_valid([-1, 1, 1], alg)

    def test_bit_level_schedule(self):
        alg = matmul_bit_level(3, 3)
        assert schedule_is_valid([1, 1, 1, 2, 1], alg)
        # [1,1,1,1,1] fails: Π d̄₆ = 1 - 1 = 0.
        assert not schedule_is_valid([1, 1, 1, 1, 1], alg)


class TestExecutionTime:
    def test_word_level(self):
        alg = matmul_word_structure()
        assert execution_time([1, 1, 1], alg, {"u": 4}) == 3 * 3 + 1

    def test_fig4_formula(self):
        for u, p in [(2, 2), (3, 3), (5, 4)]:
            alg = matmul_bit_level(u, p)
            t = execution_time([1, 1, 1, 2, 1], alg, {"u": u, "p": p})
            assert t == 3 * (u - 1) + 3 * (p - 1) + 1

    def test_matches_brute_force(self):
        alg = matmul_bit_level(2, 2)
        pi = [1, 1, 1, 2, 1]
        times = [
            sum(c * x for c, x in zip(pi, pt))
            for pt in alg.index_set.points({"u": 2, "p": 2})
        ]
        assert execution_time(pi, alg, {"u": 2, "p": 2}) == max(times) - min(times) + 1

    def test_negative_coefficient(self):
        alg = matmul_word_structure()
        # Π = [1, 1, -1] spread over [1,3]³: corner-to-corner by sign.
        assert execution_time([1, 1, -1], alg, {"u": 3}) == 2 + 2 + 2 + 1


class TestOptimalSchedule:
    def test_word_level_optimum(self):
        alg = matmul_word_structure()
        best = find_optimal_schedule(alg, {"u": 4}, coeff_bound=2)
        assert best is not None
        pi, t = best
        assert t == 10  # 3(u-1)+1: the known optimum [4]
        assert schedule_is_valid(pi, alg)

    def test_no_schedule_within_bound(self):
        from repro.structures.algorithm import Algorithm
        from repro.structures.dependence import DependenceVector
        from repro.structures.indexset import IndexSet

        # Antiparallel dependences: no linear schedule exists at all.
        alg = Algorithm(
            IndexSet.cube(1, 4),
            [DependenceVector([1]), DependenceVector([-1])],
        )
        assert find_optimal_schedule(alg, {}, coeff_bound=2) is None

    def test_fig4_certified_optimal(self):
        alg = matmul_bit_level(3, 3)
        t = fig4_mapping(3)
        ok, best = certify_time_optimal(t, alg, {"u": 3, "p": 3}, coeff_bound=2)
        assert ok
        assert best is not None and best[1] == 13

    def test_fig5_not_time_optimal(self):
        alg = matmul_bit_level(3, 3)
        t5 = fig5_mapping(3)
        ok, best = certify_time_optimal(t5, alg, {"u": 3, "p": 3}, coeff_bound=2)
        assert not ok  # Fig. 5 trades time for short wires
        assert best[1] < execution_time(t5.schedule, alg, {"u": 3, "p": 3})

    def test_interconnect_constrained_search(self):
        # Under the nearest-neighbour primitives of Fig. 5, the word
        # pipelining forces schedule coefficients >= p.
        from repro.mapping.designs import fig5_primitives

        alg = matmul_bit_level(2, 3)
        t5 = fig5_mapping(3)
        best = find_optimal_schedule(
            alg, {"u": 2, "p": 3}, coeff_bound=3,
            space=t5.space, primitives=fig5_primitives(),
        )
        assert best is not None
        pi, t = best
        assert pi[0] >= 3 and pi[1] >= 3


class TestConflicts:
    def test_fig4_conflict_free(self):
        alg = matmul_bit_level(3, 3)
        assert is_conflict_free(fig4_mapping(3), alg.index_set, {"u": 3, "p": 3})

    def test_word_level_conflict_free(self):
        alg = matmul_word_structure()
        assert is_conflict_free(word_level_mapping(), alg.index_set, {"u": 4})

    def test_conflicting_mapping_detected(self):
        # Project onto j1 only with schedule j1: every (j2, j3) collides.
        t = MappingMatrix([[1, 0, 0], [1, 0, 0]])
        alg = matmul_word_structure()
        assert not is_conflict_free(t, alg.index_set, {"u": 3})
        dirs = find_conflicts(t, alg.index_set, {"u": 3})
        assert all(t.map_vector(list(d)) == [0, 0] for d in dirs)

    def test_find_conflicts_certificates(self):
        t = MappingMatrix([[1, 0, 0], [1, 0, 0]])
        alg = matmul_word_structure()
        pairs = enumerate_conflict_pairs(t, alg.index_set, {"u": 2}, limit=5)
        assert pairs
        for a, b in pairs:
            assert a != b
            assert t.apply(a) == t.apply(b)

    def test_wrong_p_creates_conflicts(self):
        # Fig. 4's block size must equal the true p: using a smaller block
        # factor makes distinct lattice points collide.
        alg = matmul_bit_level(2, 3)
        bad = MappingMatrix([[2, 0, 0, 1, 0], [0, 2, 0, 0, 1], [1, 1, 1, 2, 1]])
        assert not is_conflict_free(bad, alg.index_set, {"u": 2, "p": 3})

    def test_mapping_width_checked(self):
        from repro.mapping.feasibility import check_feasibility

        alg = matmul_word_structure()
        with pytest.raises(ValueError):
            check_feasibility(fig4_mapping(3), alg, {"u": 3})
