"""Tests for ripple-carry adders, sequential multipliers, and the registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.registry import get_structure, list_structures, register_structure
from repro.arith.ripple import RippleCarryAdder, ripple_structure
from repro.arith.sequential import (
    SequentialAddShift,
    SequentialCarrySave,
    word_multiplier_cycles,
)
from repro.arith.structure import ArithmeticStructure
from repro.structures.indexset import IndexSet


class TestRippleAdder:
    def test_basic(self):
        adder = RippleCarryAdder(4)
        assert adder.add(5, 6) == (11, 0)

    def test_carry_out(self):
        adder = RippleCarryAdder(4)
        assert adder.add(15, 1) == (0, 1)

    def test_carry_in(self):
        adder = RippleCarryAdder(4)
        assert adder.add(5, 6, carry_in=1) == (12, 0)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_exact(self, a, b, cin):
        s, c = RippleCarryAdder(8).add(a, b, cin)
        assert s + (c << 8) == a + b + cin

    def test_steps(self):
        assert RippleCarryAdder(6).steps == 6

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            RippleCarryAdder(0)

    def test_structure(self):
        alg = ripple_structure(4)
        assert alg.dim == 1
        assert [v.vector for v in alg.dependences] == [(1,)]
        assert alg.is_uniform


class TestSequentialMultipliers:
    @pytest.mark.parametrize("cls", [SequentialAddShift, SequentialCarrySave])
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_exhaustive_small(self, cls, p):
        m = cls(p)
        for a in range(1 << p):
            for b in range(1 << p):
                assert m.multiply(a, b) == a * b

    @pytest.mark.parametrize("cls", [SequentialAddShift, SequentialCarrySave])
    def test_operand_range_checked(self, cls):
        with pytest.raises(ValueError):
            cls(3).multiply(8, 1)

    def test_addshift_cycles_quadratic(self):
        # t_b = p(2p + 1): quadratic in p.
        assert SequentialAddShift(4).cycles == 4 * 9
        assert SequentialAddShift(8).cycles == 8 * 17

    def test_carrysave_cycles_linear(self):
        # t_b = 3p: linear in p.
        assert SequentialCarrySave(4).cycles == 12
        assert SequentialCarrySave(8).cycles == 24

    def test_cycle_helper(self):
        assert word_multiplier_cycles("add-shift", 5) == SequentialAddShift(5).cycles
        assert word_multiplier_cycles("carry-save", 5) == SequentialCarrySave(5).cycles
        with pytest.raises(ValueError):
            word_multiplier_cycles("booth", 5)

    def test_ratio_grows_with_p(self):
        # The O(p²)/O(p) gap the speedup claim rests on.
        r4 = word_multiplier_cycles("add-shift", 4) / word_multiplier_cycles("carry-save", 4)
        r16 = word_multiplier_cycles("add-shift", 16) / word_multiplier_cycles("carry-save", 16)
        assert r16 > 2.5 * r4

    @given(st.integers(5, 10), st.data())
    @settings(max_examples=40, deadline=None)
    def test_sequential_sampled(self, p, data):
        a = data.draw(st.integers(0, (1 << p) - 1))
        b = data.draw(st.integers(0, (1 << p) - 1))
        assert SequentialAddShift(p).multiply(a, b) == a * b
        assert SequentialCarrySave(p).multiply(a, b) == a * b


class TestRegistry:
    def test_builtins_present(self):
        assert set(list_structures()) >= {"add-shift", "carry-save"}

    def test_get(self):
        s = get_structure("add-shift", 4)
        assert s.name == "add-shift"
        assert s.index_set.size({}) == 16

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get_structure("booth")

    def test_register_and_replace(self):
        def factory(p=None):
            return ArithmeticStructure(
                name="custom",
                index_set=IndexSet([1, 1], [2, 2]),
                delta_a=(1, 0),
                delta_b=(0, 1),
                delta_s=(1, -1),
                delta_carry=(0, 1),
                delta_carry2=(0, 2),
                multiply=lambda a, b, p: a * b,
            )

        register_structure("custom-test", factory)
        assert "custom-test" in list_structures()
        with pytest.raises(ValueError):
            register_structure("custom-test", factory)
        register_structure("custom-test", factory, replace=True)
        assert get_structure("custom-test").name == "custom"
