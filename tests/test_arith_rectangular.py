"""Tests for the mixed-word-length (rectangular lattice) extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.rectangular import (
    RectangularAddShift,
    rectangular_addshift_structure,
)
from repro.depanalysis import analyze
from repro.expansion.theorem31 import bit_level_structure
from repro.expansion.verify import effective_edges
from repro.ir.builders import word_model_structure
from repro.ir.expand import expand_bit_level
from repro.structures.conditions import Eq, Or
from repro.structures.params import S


class TestEvaluator:
    @pytest.mark.parametrize("pa,pb", [(1, 1), (2, 3), (3, 2), (4, 2), (1, 4)])
    def test_exhaustive(self, pa, pb):
        m = RectangularAddShift(pa, pb)
        for a in range(1 << pa):
            for b in range(1 << pb):
                assert m.multiply(a, b) == a * b

    @given(st.integers(1, 8), st.integers(1, 8), st.data())
    @settings(max_examples=60, deadline=None)
    def test_sampled(self, pa, pb, data):
        a = data.draw(st.integers(0, (1 << pa) - 1))
        b = data.draw(st.integers(0, (1 << pb) - 1))
        assert RectangularAddShift(pa, pb).multiply(a, b) == a * b

    def test_result_width(self):
        bits = RectangularAddShift(3, 2).result_bits(7, 3)
        assert len(bits) == 5  # pa + pb

    def test_square_degenerates_to_addshift(self):
        from repro.arith.addshift import AddShiftMultiplier

        sq = AddShiftMultiplier(3)
        rect = RectangularAddShift(3, 3)
        for a in range(8):
            for b in range(8):
                assert sq.multiply(a, b) == rect.multiply(a, b)

    def test_invalid(self):
        with pytest.raises(ValueError):
            RectangularAddShift(0, 2)

    def test_steps(self):
        assert RectangularAddShift(3, 2).steps == 6


class TestStructure:
    def test_index_set_rectangular(self):
        s = rectangular_addshift_structure()
        assert s.index_set.bounds({"pa": 4, "pb": 2}) == [(1, 2), (1, 4)]

    def test_same_vectors_as_square(self):
        from repro.arith.addshift import addshift_structure

        rect = rectangular_addshift_structure()
        sq = addshift_structure()
        assert rect.distinct_vectors() == sq.distinct_vectors()

    def test_theorem31_boundary_uses_i1_bound(self):
        # The Expansion II boundary condition must reference pb (i1 extent).
        word = word_model_structure([1], [1], [1], [1], [4])
        alg = bit_level_structure(
            word, rectangular_addshift_structure(), "II"
        )
        d3 = next(v for v in alg.dependences if v.vector == (1, 0, 0)
                  and "z" in v.causes)
        assert d3.validity == Or(Eq(1, S("pb")), Eq(2, 1))

    def test_cross_validation_mixed_lengths(self):
        # Compose with pa=3, pb=2 and compare against general analysis of
        # the rectangular expanded program, edge for edge.
        pa, pb = 3, 2
        word = word_model_structure([1], [1], [1], [1], [3])
        alg = bit_level_structure(
            word, rectangular_addshift_structure(pa, pb), "II"
        )
        predicted = effective_edges(alg, {"u": 3, "pa": pa, "pb": pb})

        program = expand_bit_level([1], [1], [1], [1], [3], pb, "II", p2=pa)
        result = analyze(program, {}, method="enumerate")
        observed = {(i.sink, i.vector) for i in result.instances}
        assert predicted == observed

    def test_cross_validation_expansion1(self):
        pa, pb = 2, 3
        word = word_model_structure([1], [1], [1], [1], [3])
        alg = bit_level_structure(
            word, rectangular_addshift_structure(pa, pb), "I"
        )
        predicted = effective_edges(alg, {"u": 3, "pa": pa, "pb": pb})
        program = expand_bit_level([1], [1], [1], [1], [3], pb, "I", p2=pa)
        result = analyze(program, {}, method="enumerate")
        observed = {(i.sink, i.vector) for i in result.instances}
        assert predicted == observed
