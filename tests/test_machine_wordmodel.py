"""Tests for the generic word-level model machine."""

import pytest

from repro.machine.model import BitLevelModelMachine
from repro.machine.wordmodel import WordLevelModelMachine
from repro.mapping import designs
from repro.mapping.transform import MappingMatrix

# A valid 1-D-space mapping for the 2-D convolution: PE = j1,
# time = 2*j1 + j2 (Π·h̄ > 0 for all of [1,0], [1,-1], [0,1]).
WORD_CONV_T = MappingMatrix([[1, 0], [2, 1]], "T-conv-word")


def conv_words(w, sig, n_pts, taps):
    xw, yw = {}, {}
    for j1 in range(1, n_pts + 1):
        for j2 in range(1, taps + 1):
            xw[(j1, j2)] = w[j2 - 1]
            yw[(j1, j2)] = sig[j1 + j2 - 2]
    return xw, yw


class TestWordModelMachine:
    def test_matmul_agrees_with_formula(self, rng):
        u, p = 3, 3
        m = WordLevelModelMachine(
            [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p,
            designs.word_level_mapping(), "add-shift",
        )
        X = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        Y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        xw, yw = {}, {}
        for j1 in range(1, u + 1):
            for j2 in range(1, u + 1):
                for j3 in range(1, u + 1):
                    xw[(j1, j2, j3)] = X[j1 - 1][j3 - 1]
                    yw[(j1, j2, j3)] = Y[j3 - 1][j2 - 1]
        run = m.run(xw, yw)
        assert run.word_beats == 3 * (u - 1) + 1
        assert run.total_cycles == designs.word_level_time(u, p, "add-shift")
        for j1 in range(1, u + 1):
            for j2 in range(1, u + 1):
                want = sum(X[j1 - 1][k - 1] * Y[k - 1][j2 - 1] for k in range(1, u + 1))
                assert run.outputs[(j1, j2, u)] == want

    def test_convolution_exact(self, rng):
        p, n_pts, taps = 4, 4, 3
        w = [rng.randrange(1 << p) for _ in range(taps)]
        sig = [rng.randrange(1 << p) for _ in range(n_pts + taps)]
        m = WordLevelModelMachine(
            [1, 0], [1, -1], [0, 1], [1, 1], [n_pts, taps], p,
            WORD_CONV_T, "carry-save",
        )
        xw, yw = conv_words(w, sig, n_pts, taps)
        run = m.run(xw, yw)
        for j1 in range(1, n_pts + 1):
            want = sum(w[j2 - 1] * sig[j1 + j2 - 2] for j2 in range(1, taps + 1))
            assert run.outputs[(j1, taps)] == want

    def test_z_init(self):
        m = WordLevelModelMachine(
            [1, 0], [1, -1], [0, 1], [1, 1], [2, 2], 3, WORD_CONV_T
        )
        xw, yw = conv_words([1, 2], [1, 1, 1, 1], 2, 2)
        run = m.run(xw, yw, z_init={(j1, 1): 10 for j1 in (1, 2)})
        assert all(v == 13 for v in run.outputs.values())

    def test_speedup_vs_bit_level_per_workload(self, rng):
        # The generalized speedup claim: the bit-level convolution array
        # beats the word-level one by more than p.
        p, n_pts, taps = 3, 4, 3
        w = [rng.randrange(1 << p) for _ in range(taps)]
        sig = [rng.randrange(1 << p) for _ in range(n_pts + taps)]
        xw, yw = conv_words(w, sig, n_pts, taps)

        word = WordLevelModelMachine(
            [1, 0], [1, -1], [0, 1], [1, 1], [n_pts, taps], p,
            WORD_CONV_T, "add-shift",
        ).run(xw, yw)

        bit_T = MappingMatrix([[3, 0, 1, 0], [0, 0, 0, 1], [2, 1, 2, 1]])
        bit = BitLevelModelMachine(
            [1, 0], [1, -1], [0, 1], [1, 1], [n_pts, taps], p, bit_T, "II"
        ).run(xw, yw)

        mask = (1 << (2 * p - 1)) - 1
        assert {j: v & mask for j, v in word.outputs.items()} == bit.outputs
        assert word.total_cycles / bit.sim.makespan > p

    def test_unknown_arithmetic(self):
        with pytest.raises(ValueError):
            WordLevelModelMachine(
                [1], [1], [1], [1], [3], 2,
                MappingMatrix([[1]]), "booth",
            )

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            WordLevelModelMachine(
                [1, 0], [1], [1], [1], [3], 2, MappingMatrix([[1]])
            )
