"""Tests for obs v2: event bus, percentiles, progress, cross-process
aggregation, and the Chrome trace exporter."""

import io
import json

from repro import obs
from repro.obs import (
    CallbackSink,
    Histogram,
    JsonlSink,
    Registry,
    RingBufferSink,
)


class TestEventBus:
    def test_no_sinks_no_emission(self):
        reg = Registry()
        assert reg.sinks == []
        reg.count("c")
        reg.gauge("g", 1.0)  # must not raise; nothing to observe

    def test_events_stream_to_ring_buffer(self):
        reg = Registry()
        ring = RingBufferSink()
        reg.add_sink(ring)
        with reg.span("outer", u=2):
            reg.count("c", 2)
            reg.gauge("g", 1.5)
            reg.observe("h", 3.0)
        kinds = [e["type"] for e in ring.events]
        assert kinds == ["span_start", "counter", "gauge", "observe",
                        "span_end"]
        for event in ring.events:
            assert event["pid"] == reg.pid
            assert isinstance(event["ts"], float)
            assert "name" in event
        counter = next(e for e in ring.events if e["type"] == "counter")
        assert counter["delta"] == 2 and counter["value"] == 2
        end = ring.events[-1]
        assert end["name"] == "outer" and end["dur_s"] >= 0.0

    def test_ring_buffer_capacity(self):
        ring = RingBufferSink(capacity=4)
        for i in range(10):
            ring.emit({"type": "counter", "i": i})
        assert len(ring) == 4
        assert [e["i"] for e in ring.events] == [6, 7, 8, 9]

    def test_jsonl_sink_writes_parseable_lines(self):
        buf = io.StringIO()
        reg = Registry()
        reg.add_sink(JsonlSink(buf))
        reg.count("x")
        with reg.span("s"):
            pass
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [l["type"] for l in lines] == [
            "counter", "span_start", "span_end"
        ]

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "bus.jsonl"
        reg = Registry()
        sink = JsonlSink(path)
        reg.add_sink(sink)
        reg.count("x", 3)
        reg.remove_sink(sink)  # closes owned file
        (record,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert record["value"] == 3

    def test_callback_sink_filters_kinds(self):
        seen = []
        reg = Registry()
        reg.add_sink(CallbackSink(seen.append, kinds={"gauge"}))
        reg.count("c")
        reg.gauge("g", 2.0)
        assert [e["type"] for e in seen] == ["gauge"]

    def test_count_many_streams_per_name(self):
        reg = Registry()
        ring = RingBufferSink()
        reg.add_sink(ring)
        reg.count_many({"a": 1, "b": 2}, prefix="pre.")
        assert {e["name"] for e in ring.events} == {"pre.a", "pre.b"}


class TestPercentiles:
    def test_exact_under_cap(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        d = h.as_dict()
        assert (d["p50"], d["p90"], d["p99"]) == (50.0, 90.0, 99.0)

    def test_empty_percentiles_are_none(self):
        d = Histogram().as_dict()
        assert d["p50"] is None and d["p99"] is None

    def test_deterministic_beyond_cap(self):
        a, b = Histogram(), Histogram()
        values = [float((i * 37) % 1000) for i in range(2000)]
        for v in values:
            a.observe(v)
            b.observe(v)
        assert a.as_dict() == b.as_dict()
        assert len(a.samples) == a.cap

    def test_merge_matches_unpartitioned_under_cap(self):
        whole = Histogram()
        left, right = Histogram(), Histogram()
        values = [float(v) for v in range(200)]
        for v in values:
            whole.observe(v)
        for v in values[:77]:
            left.observe(v)
        for v in values[77:]:
            right.observe(v)
        left.merge(right)
        assert left.as_dict() == whole.as_dict()

    def test_merge_aggregates_exactly(self):
        left, right = Histogram(), Histogram()
        for v in (1.0, 5.0):
            left.observe(v)
        for v in (2.0, 10.0):
            right.observe(v)
        left.merge(right)
        assert (left.count, left.total, left.min, left.max) == (4, 18.0, 1.0,
                                                                10.0)

    def test_state_round_trip(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        back = Histogram.from_state(
            json.loads(json.dumps(h.state_dict()))
        )
        assert back.as_dict() == h.as_dict()

    def test_render_tree_shows_percentiles(self):
        reg = Registry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("h", v)
        assert "p50=2" in obs.render_tree(reg)


class TestProgress:
    def test_emits_over_bus_and_sets_gauge(self):
        reg = Registry()
        ring = RingBufferSink()
        reg.add_sink(ring)
        with reg.progress("work", total=3, min_interval=0.0) as prog:
            for _ in range(3):
                prog.advance()
        events = [e for e in ring.events if e["type"] == "progress"]
        assert events, "no progress events emitted"
        assert events[-1]["final"] is True
        assert events[-1]["done"] == 3 and events[-1]["total"] == 3
        assert events[-1]["rate"] is None or events[-1]["rate"] > 0
        assert reg.gauges["progress.work"] == 3

    def test_throttled_without_sinks(self):
        reg = Registry()
        with reg.progress("quiet", total=5) as prog:
            for _ in range(5):
                prog.advance()
        assert reg.gauges["progress.quiet"] == 5

    def test_ambient_helper_null_when_disabled(self):
        prog = obs.progress("nothing", total=10)
        assert prog is obs.NULL_PROGRESS
        prog.advance()
        prog.close()  # no-ops

    def test_ambient_helper_live_when_collecting(self):
        with obs.collecting() as reg:
            with obs.progress("live", total=2) as prog:
                prog.advance(2)
        assert reg.gauges["progress.live"] == 2


class TestDeltaMerge:
    def _worker_like_registry(self):
        reg = Registry()
        with reg.span("work", case=1):
            reg.count("jobs", 3)
            reg.gauge("level", 2.5)
            reg.observe("seconds", 0.5)
        return reg

    def test_delta_is_json_ready(self):
        delta = self._worker_like_registry().delta()
        back = json.loads(json.dumps(delta))
        assert back["counters"] == {"jobs": 3}
        assert back["spans"][0]["name"] == "work"

    def test_merge_combines_all_metric_kinds(self):
        parent = Registry()
        parent.count("jobs", 1)
        parent.observe("seconds", 1.5)
        delta = self._worker_like_registry().delta()
        parent.merge_delta(delta)
        assert parent.counters["jobs"] == 4
        assert parent.gauges["level"] == 2.5
        h = parent.histograms["seconds"]
        assert h.count == 2 and h.max == 1.5

    def test_merge_grafts_spans_under_open_span_with_pid(self):
        parent = Registry()
        delta = self._worker_like_registry().delta()
        with parent.span("parent"):
            parent.merge_delta(delta, attrs={"worker": 7})
        (root,) = parent.roots
        (graft,) = root.children
        assert graft.name == "work"
        assert graft.attrs["pid"] == delta["pid"]
        assert graft.attrs["worker"] == 7
        assert graft.attrs["case"] == 1

    def test_merge_order_independent_aggregates(self):
        deltas = [self._worker_like_registry().delta() for _ in range(3)]
        a, b = Registry(), Registry()
        for d in deltas:
            a.merge_delta(d)
        for d in reversed(deltas):
            b.merge_delta(d)
        assert a.counters == b.counters
        assert a.histograms["seconds"].as_dict() == (
            b.histograms["seconds"].as_dict()
        )


class TestCrossProcessDeterminism:
    def _search_metrics(self, workers):
        from repro.expansion.theorem31 import matmul_bit_level
        from repro.mapping import designs
        from repro.mapping.engine import SearchConfig, run_search

        alg = matmul_bit_level(2, 2, "II")
        with obs.collecting() as reg:
            found = run_search(
                alg, {"u": 2, "p": 2}, designs.fig4_primitives(2),
                SearchConfig(target_space_dim=2, block_values=[2],
                             max_candidates=2, workers=workers,
                             persist_cache=False),
            )
        return found, reg

    def test_same_trace_modulo_worker_id(self):
        found_1, reg_1 = self._search_metrics(workers=1)
        found_2, reg_2 = self._search_metrics(workers=2)
        assert [(c.time, c.processors) for c in found_1] == (
            [(c.time, c.processors) for c in found_2]
        )
        # Counters: identical except the worker-local memo's hit/miss
        # split, whose sum (lookups) is partition-invariant.
        c1, c2 = dict(reg_1.counters), dict(reg_2.counters)
        split = ("mapping.cache_hits", "mapping.cache_misses")
        assert sum(c1[k] for k in split) == sum(c2[k] for k in split)
        for k in split:
            c1.pop(k), c2.pop(k)
        assert c1 == c2
        # Histograms: same keys and observation counts (values are wall
        # times and legitimately differ).
        assert set(reg_1.histograms) == set(reg_2.histograms)
        for name, h1 in reg_1.histograms.items():
            assert h1.count == reg_2.histograms[name].count
        # Spans: same name multiset; worker spans carry pid attribution.
        names = lambda reg: sorted(s.name for s in reg.iter_spans())
        assert names(reg_1) == names(reg_2)
        worker_pids = {
            s.attrs["pid"] for s in reg_2.iter_spans() if "pid" in s.attrs
        }
        assert worker_pids and reg_2.pid not in worker_pids
        # Progress gauge: same number of candidates merged/evaluated.
        assert reg_1.gauges["progress.mapping.spaces"] == (
            reg_2.gauges["progress.mapping.spaces"]
        )


class TestChromeTrace:
    def _registry_with_events(self):
        reg = Registry()
        ring = RingBufferSink()
        reg.add_sink(ring)
        with reg.span("root", kind="test"):
            reg.count("hits", 2)
            reg.gauge("util", 0.5)
            with reg.span("child"):
                pass
        reg.emit_series("busy", [(0, 1), (1, 3), (2, 0)])
        return reg, ring

    def test_schema_round_trip(self, tmp_path):
        reg, ring = self._registry_with_events()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(reg, path, ring.events)
        rows = json.loads(path.read_text())
        assert isinstance(rows, list) and rows
        for row in rows:
            for key in ("ts", "dur", "pid", "tid", "name"):
                assert key in row, f"{row.get('ph')} event missing {key}"
        span_names = [r["name"] for r in rows if r["ph"] == "X"]
        assert sorted(span_names) == ["child", "root"]
        counters = [r for r in rows if r["ph"] == "C"]
        assert {r["name"] for r in counters} >= {"hits", "util", "busy"}
        series = [r for r in counters if r["name"] == "busy"]
        assert [(r["ts"], r["args"]["value"]) for r in series] == [
            (0.0, 1), (1.0, 3), (2.0, 0)
        ]
        metas = [r for r in rows if r["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} >= {
            f"parent (pid {reg.pid})", "series (caller timebase)"
        }

    def test_timestamps_rebased_to_zero(self):
        reg, ring = self._registry_with_events()
        rows = obs.chrome_trace_events(reg, ring.events)
        span_rows = [r for r in rows if r["ph"] == "X"]
        assert min(r["ts"] for r in span_rows) == 0.0
        root = next(r for r in span_rows if r["name"] == "root")
        child = next(r for r in span_rows if r["name"] == "child")
        assert root["ts"] <= child["ts"]
        assert root["dur"] >= child["dur"]

    def test_merged_worker_spans_get_own_tracks(self):
        parent = Registry()
        worker = Registry()
        worker.pid = parent.pid + 1  # simulate another process
        with worker.span("mapping.evaluate_space"):
            pass
        with parent.span("mapping.search_designs"):
            parent.merge_delta(worker.delta())
        rows = obs.chrome_trace_events(parent)
        by_name = {r["name"]: r for r in rows if r["ph"] == "X"}
        assert by_name["mapping.search_designs"]["pid"] == parent.pid
        assert by_name["mapping.evaluate_space"]["pid"] == worker.pid
