"""Tests for affine-constrained index sets and the LU structure."""

import pytest

from repro.ir.builders import lu_word_structure
from repro.mapping import (
    check_feasibility,
    execution_time,
    free_schedule_time,
    processor_count,
)
from repro.mapping.conflicts import is_conflict_free
from repro.mapping.designs import word_level_mapping
from repro.mapping.transform import MappingMatrix
from repro.structures.constrained import AffineConstraint, ConstrainedIndexSet
from repro.structures.indexset import IndexSet
from repro.structures.params import S


def triangle(n):
    """{(i, j): 1 <= j <= i <= n}."""
    return ConstrainedIndexSet(
        [1, 1], [n, n], [AffineConstraint((1, -1))], ("i", "j")
    )


class TestAffineConstraint:
    def test_holds(self):
        c = AffineConstraint((1, -1))  # i - j >= 0
        assert c.holds((3, 2), {})
        assert c.holds((3, 3), {})
        assert not c.holds((2, 3), {})

    def test_symbolic_offset(self):
        c = AffineConstraint((1, 0), -S("k"))  # i >= k
        assert c.holds((4, 0), {"k": 3})
        assert not c.holds((2, 0), {"k": 3})

    def test_repr_and_hash(self):
        c = AffineConstraint((1, -1))
        assert ">= 0" in repr(c)
        assert len({c, AffineConstraint((1, -1))}) == 1


class TestConstrainedIndexSet:
    def test_membership(self):
        t = triangle(4)
        assert t.contains((3, 2), {})
        assert not t.contains((2, 3), {})
        assert not t.contains((5, 1), {})

    def test_size_triangular(self):
        assert triangle(4).size({}) == 10  # 4+3+2+1

    def test_points_filtered(self):
        pts = list(triangle(3).points({}))
        assert all(i >= j for i, j in pts)
        assert len(pts) == 6

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            ConstrainedIndexSet([1], [3], [AffineConstraint((1, -1))])

    def test_rename_preserves_constraints(self):
        t = triangle(3).rename(("a", "b"))
        assert t.size({}) == 6
        assert t.names == ("a", "b")

    def test_product_pads_constraints(self):
        prod = triangle(3).product(IndexSet.cube(1, 2))
        assert prod.dim == 3
        assert prod.size({}) == 12  # 6 * 2
        assert all(p[0] >= p[1] for p in prod.points({}))

    def test_equality(self):
        assert triangle(3) == triangle(3)
        assert triangle(3) != ConstrainedIndexSet([1, 1], [3, 3])
        # An unconstrained ConstrainedIndexSet equals the plain box.
        assert ConstrainedIndexSet([1, 1], [3, 3]) == IndexSet.cube(2, 3)

    def test_marker(self):
        assert triangle(2).is_constrained


class TestLUStructure:
    B = {"n": 4}

    def test_triangular_size(self):
        alg = lu_word_structure(4)
        assert alg.index_set.size(self.B) == sum(k * k for k in range(1, 5))

    def test_uniform_dependences(self):
        alg = lu_word_structure()
        assert alg.is_uniform
        assert {v.vector for v in alg.dependences} == {
            (1, 0, 0), (0, 1, 0), (0, 0, 1)
        }

    def test_classic_schedule_feasible(self):
        alg = lu_word_structure(4)
        rep = check_feasibility(word_level_mapping(), alg, self.B)
        assert rep.feasible

    def test_execution_time_exact_over_triangle(self):
        alg = lu_word_structure(4)
        t = execution_time([1, 1, 1], alg, self.B)
        assert t == 3 * 4 - 3 + 1  # spread of i+j+k over the prism

    def test_matches_free_schedule(self):
        alg = lu_word_structure(4)
        assert free_schedule_time(alg, self.B) == execution_time(
            [1, 1, 1], alg, self.B
        )

    def test_processor_count(self):
        alg = lu_word_structure(4)
        assert processor_count(word_level_mapping(), alg.index_set, self.B) == 16

    def test_conflicts_exact_not_conservative(self):
        # A mapping injective on the triangle but not on the box: the
        # conservative lattice test would reject it; the exact test passes.
        # PE = i - j (valid distinct per k only if time separates), time = i + j + k:
        alg = lu_word_structure(3)
        t = MappingMatrix([[1, -1, 0], [1, 1, 1]])
        # Whether or not this specific T is injective on the triangle, the
        # two code paths must agree with brute-force hashing.
        from repro.mapping.conflicts import find_conflicts

        exact = not find_conflicts(t, alg.index_set, {"n": 3}, limit=1)
        assert is_conflict_free(t, alg.index_set, {"n": 3}) == exact
