"""End-to-end machine execution tests: bit-level and word-level matmul."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import random_matrix, reference_matmul

from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.simulator import SpaceTimeSimulator
from repro.machine.wordlevel import WordLevelMatmulMachine
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs


class TestBitLevelMatmul:
    @pytest.mark.parametrize("u,p", [(2, 2), (3, 2), (2, 3), (3, 3)])
    @pytest.mark.parametrize("design", ["fig4", "fig5"])
    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_product_correct(self, u, p, design, expansion, rng):
        t = designs.fig4_mapping(p) if design == "fig4" else designs.fig5_mapping(p)
        machine = BitLevelMatmulMachine(u, p, t, expansion)
        mask = (1 << (2 * p - 1)) - 1
        x = random_matrix(rng, u, p)
        y = random_matrix(rng, u, p)
        out = machine.run(x, y)
        assert out.product == reference_matmul(x, y, mask)

    @pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (4, 2)])
    def test_fig4_makespan_formula(self, u, p, rng):
        machine = BitLevelMatmulMachine(u, p, designs.fig4_mapping(p), "II")
        out = machine.run(random_matrix(rng, u, p), random_matrix(rng, u, p))
        assert out.sim.makespan == designs.t_fig4(u, p)

    @pytest.mark.parametrize("u,p", [(2, 2), (3, 3)])
    def test_fig5_makespan_formula(self, u, p, rng):
        machine = BitLevelMatmulMachine(u, p, designs.fig5_mapping(p), "II")
        out = machine.run(random_matrix(rng, u, p), random_matrix(rng, u, p))
        assert out.sim.makespan == designs.t_fig5(u, p)

    def test_processor_count(self, rng):
        machine = BitLevelMatmulMachine(2, 3, designs.fig4_mapping(3), "II")
        out = machine.run(random_matrix(rng, 2, 3), random_matrix(rng, 2, 3))
        assert out.sim.processor_count == designs.fig4_processor_count(2, 3)

    def test_always_busy(self, rng):
        # Condition 5's intent: no globally idle beat.
        machine = BitLevelMatmulMachine(3, 2, designs.fig4_mapping(2), "II")
        out = machine.run(random_matrix(rng, 3, 2), random_matrix(rng, 3, 2))
        assert out.sim.always_busy

    def test_identity_matrix(self):
        p, u = 3, 3
        machine = BitLevelMatmulMachine(u, p, designs.fig4_mapping(p), "II")
        ident = [[1 if i == j else 0 for j in range(u)] for i in range(u)]
        x = [[5, 1, 2], [3, 7, 4], [6, 2, 1]]
        out = machine.run(x, ident)
        assert out.product == x

    def test_zero_matrix(self):
        machine = BitLevelMatmulMachine(2, 2, designs.fig4_mapping(2), "II")
        zero = [[0, 0], [0, 0]]
        out = machine.run(zero, zero)
        assert out.product == zero
        assert out.max_summands <= 1

    def test_overflow_wraps_mod_2p_minus_1_bits(self):
        # Max operands at p = 2, u = 3: true value 27 wraps mod 8.
        machine = BitLevelMatmulMachine(3, 2, designs.fig4_mapping(2), "II")
        x = [[3] * 3 for _ in range(3)]
        out = machine.run(x, x)
        assert out.product == [[27 & 7] * 3 for _ in range(3)]
        assert out.dropped_bits > 0

    def test_max_summands_bounded(self, rng):
        machine = BitLevelMatmulMachine(3, 3, designs.fig4_mapping(3), "II")
        out = machine.run(random_matrix(rng, 3, 3), random_matrix(rng, 3, 3))
        assert out.max_summands <= 5

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_property_random_matrices(self, data):
        u = data.draw(st.integers(2, 3))
        p = data.draw(st.integers(2, 3))
        x = [
            [data.draw(st.integers(0, (1 << p) - 1)) for _ in range(u)]
            for _ in range(u)
        ]
        y = [
            [data.draw(st.integers(0, (1 << p) - 1)) for _ in range(u)]
            for _ in range(u)
        ]
        machine = BitLevelMatmulMachine(u, p, designs.fig4_mapping(p), "II")
        mask = (1 << (2 * p - 1)) - 1
        assert machine.run(x, y).product == reference_matmul(x, y, mask)


class TestWordLevelMatmul:
    @pytest.mark.parametrize("arith", ["add-shift", "carry-save"])
    def test_product_exact(self, arith, rng):
        u, p = 3, 4
        m = WordLevelMatmulMachine(u, p, arith)
        x = random_matrix(rng, u, p)
        y = random_matrix(rng, u, p)
        out = m.run(x, y)
        assert out.product == reference_matmul(x, y)

    def test_beats_formula(self, rng):
        u = 5
        m = WordLevelMatmulMachine(u, 3, "add-shift")
        out = m.run(random_matrix(rng, u, 3), random_matrix(rng, u, 3))
        assert out.word_beats == 3 * (u - 1) + 1

    def test_total_cycles(self, rng):
        u, p = 4, 3
        m = WordLevelMatmulMachine(u, p, "carry-save")
        out = m.run(random_matrix(rng, u, p), random_matrix(rng, u, p))
        assert out.total_cycles == designs.word_level_time(u, p, "carry-save")

    def test_unknown_arithmetic(self):
        with pytest.raises(ValueError):
            WordLevelMatmulMachine(2, 2, "booth")

    def test_bit_level_beats_word_level(self, rng):
        # The headline claim, measured end to end on one instance.
        u, p = 3, 3
        x = random_matrix(rng, u, p)
        y = random_matrix(rng, u, p)
        word = WordLevelMatmulMachine(u, p, "add-shift").run(x, y)
        bit = BitLevelMatmulMachine(u, p, designs.fig4_mapping(p), "II").run(x, y)
        assert bit.sim.makespan < word.total_cycles
        assert word.total_cycles / bit.sim.makespan > p


class TestSimulatorGeneric:
    def test_empty_index_set(self):
        from repro.structures.algorithm import Algorithm
        from repro.structures.indexset import IndexSet

        alg = Algorithm(IndexSet([2], [1]), [])
        sim = SpaceTimeSimulator(
            designs.word_level_mapping(), matmul_word_structure(), {"u": 0}
        )
        result = sim.run(lambda q, s: None)
        assert result.makespan == 0
        assert result.computations == 0

    def test_utilization_stats(self):
        alg = matmul_word_structure()
        sim = SpaceTimeSimulator(designs.word_level_mapping(), alg, {"u": 2})
        result = sim.run(lambda q, s: None)
        assert result.computations == 8
        assert result.processor_count == 4
        assert 0 < result.mean_utilization <= 1
        assert sum(result.busy_per_step.values()) == 8
