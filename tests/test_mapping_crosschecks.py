"""Metamorphic/property cross-checks inside the mapping layer.

Two independent implementations of the same question must agree:

* conflict detection: the lattice method (integer nullspace of ``T``
  bounded by the difference box) vs brute-force hashing of ``T j̄``;
* execution time: the corner formula vs explicit maximization;
* schedule optimality: `find_optimal_schedule` vs brute force over the
  same coefficient box.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.conflicts import (
    enumerate_conflict_pairs,
    find_conflicts,
    is_conflict_free,
)
from repro.mapping.schedule import (
    execution_time,
    find_optimal_schedule,
    schedule_is_valid,
)
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.conditions import TRUE
from repro.structures.dependence import DependenceVector
from repro.structures.indexset import IndexSet


def random_mapping(draw, k, n, bound=2):
    rows = [
        [draw(st.integers(-bound, bound)) for _ in range(n)] for _ in range(k)
    ]
    return MappingMatrix(rows)


class TestConflictCrossCheck:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_lattice_vs_hashing(self, data):
        n = data.draw(st.integers(2, 3))
        k = data.draw(st.integers(2, n))
        t = random_mapping(data.draw, k, n)
        size = data.draw(st.integers(2, 3))
        index_set = IndexSet.cube(n, size)
        lattice_says_free = is_conflict_free(t, index_set, {})
        hashing_pairs = enumerate_conflict_pairs(t, index_set, {}, limit=1)
        assert lattice_says_free == (not hashing_pairs)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_conflict_directions_are_real(self, data):
        n = 3
        t = random_mapping(data.draw, 2, n)
        index_set = IndexSet.cube(n, 3)
        for d in find_conflicts(t, index_set, {}):
            assert any(d)
            assert t.map_vector(list(d)) == [0] * t.k


class TestExecutionTimeCrossCheck:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_formula_vs_enumeration(self, data):
        n = data.draw(st.integers(1, 3))
        pi = [data.draw(st.integers(-3, 3)) for _ in range(n)]
        size = data.draw(st.integers(1, 4))
        alg = Algorithm(
            IndexSet.cube(n, size), [DependenceVector([1] * n, (), TRUE)]
        )
        times = [
            sum(c * x for c, x in zip(pi, pt))
            for pt in alg.index_set.points({})
        ]
        assert execution_time(pi, alg, {}) == max(times) - min(times) + 1


class TestOptimalityCrossCheck:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_search_is_truly_minimal(self, data):
        # Random small uniform dependence sets; brute force over the same
        # coefficient box must not beat find_optimal_schedule.
        n = 2
        m = data.draw(st.integers(1, 3))
        vectors = []
        for _ in range(m):
            vec = [data.draw(st.integers(-1, 2)) for _ in range(n)]
            if not any(vec):
                vec[0] = 1
            vectors.append(DependenceVector(vec))
        alg = Algorithm(IndexSet.cube(n, 4), vectors)
        bound = 2
        best = find_optimal_schedule(alg, {}, coeff_bound=bound)
        brute = None
        for pi in itertools.product(range(-bound, bound + 1), repeat=n):
            if not schedule_is_valid(pi, alg):
                continue
            t = execution_time(pi, alg, {})
            if brute is None or t < brute:
                brute = t
        if brute is None:
            assert best is None
        else:
            assert best is not None
            assert best[1] == brute
            assert schedule_is_valid(best[0], alg)
