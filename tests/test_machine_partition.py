"""Tests for pass-partitioned execution."""

import pytest

from repro.machine.partition import PartitionedModelMachine
from repro.mapping import designs
from tests.conftest import random_matrix


def matmul_partitioned(u, p, width, expansion="II"):
    return PartitionedModelMachine(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p,
        designs.fig4_mapping(p), width, expansion,
    )


def matmul_words(X, Y, u):
    xw, yw = {}, {}
    for j1 in range(1, u + 1):
        for j2 in range(1, u + 1):
            for j3 in range(1, u + 1):
                xw[(j1, j2, j3)] = X[j1 - 1][j3 - 1]
                yw[(j1, j2, j3)] = Y[j3 - 1][j2 - 1]
    return xw, yw


class TestValidation:
    def test_non_unit_h3_rejected(self):
        with pytest.raises(ValueError, match="unit vector"):
            PartitionedModelMachine(
                [1], [1], [2], [1], [4], 2, designs.fig4_mapping(2), 2
            )

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError, match="negative component"):
            PartitionedModelMachine(
                [1, -1], [1, 0], [0, 1], [1, 1], [3, 3], 2,
                designs.fig4_mapping(2), 1,
            )

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            matmul_partitioned(2, 2, 0)


class TestSlabs:
    def test_even_split(self):
        m = matmul_partitioned(4, 2, 2)
        assert m.slab_bounds() == [(1, 2), (3, 4)]

    def test_ragged_split(self):
        m = matmul_partitioned(5, 2, 2)
        assert m.slab_bounds() == [(1, 2), (3, 4), (5, 5)]

    def test_single_slab(self):
        m = matmul_partitioned(3, 2, 10)
        assert m.slab_bounds() == [(1, 3)]


class TestExecution:
    @pytest.mark.parametrize("width", [1, 2, 3])
    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_partitioned_equals_monolithic(self, width, expansion, rng):
        u, p = 3, 2
        X = random_matrix(rng, u, p)
        Y = random_matrix(rng, u, p)
        xw, yw = matmul_words(X, Y, u)
        m = matmul_partitioned(u, p, width, expansion)
        run = m.run(xw, yw)
        assert run.outputs == m.reference(xw, yw)
        assert run.pass_count == -(-u // width)

    def test_total_time_is_sum_of_passes(self, rng):
        u, p, width = 4, 2, 2
        X = random_matrix(rng, u, p)
        Y = random_matrix(rng, u, p)
        xw, yw = matmul_words(X, Y, u)
        run = matmul_partitioned(u, p, width).run(xw, yw)
        assert run.total_makespan == sum(r.sim.makespan for r in run.passes)
        # Each pass is an instance with only the accumulation axis shrunk
        # to `width`: t = 2(u-1) + (width-1) + 3(p-1) + 1 per eq. (4.5).
        per_pass = 2 * (u - 1) + (width - 1) + 3 * (p - 1) + 1
        assert all(r.sim.makespan == per_pass for r in run.passes)

    def test_footprint_is_single_slab(self, rng):
        # S has a zero column on j3, so the PE set is unchanged per pass.
        u, p = 3, 2
        X = random_matrix(rng, u, p)
        xw, yw = matmul_words(X, X, u)
        run = matmul_partitioned(u, p, 1).run(xw, yw)
        assert run.processor_count == designs.fig4_processor_count(u, p)

    def test_z_init_carried_through(self, rng):
        u, p = 2, 3
        X = random_matrix(rng, u, p)
        Y = random_matrix(rng, u, p)
        xw, yw = matmul_words(X, Y, u)
        z0 = {
            (j1, j2, 1): rng.randrange(1 << (2 * p - 1))
            for j1 in range(1, u + 1) for j2 in range(1, u + 1)
        }
        m = matmul_partitioned(u, p, 1)
        assert m.run(xw, yw, z_init=z0).outputs == m.reference(xw, yw, z0)
