"""Tests for the bit-level functional evaluators (both expansions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expansion.semantics import BitLevelEvaluator, LatticeSweep


class TestLatticeSweep:
    def test_empty_sweep(self):
        sweep = LatticeSweep(2)
        sweep.run()
        assert all(b == 0 for b in sweep.sum_bits.values())
        assert sweep.boundary_word() == 0

    def test_single_multiplication(self):
        # Seeding partial products of 3 x 3 at p = 2 must give 9 mod 8 = 1.
        sweep = LatticeSweep(2)
        for i1 in (1, 2):
            for i2 in (1, 2):
                sweep.seed((i1, i2), 1)  # all pp bits of 3 x 3 are 1
        sweep.run()
        assert sweep.boundary_word() == (3 * 3) & 0b111

    def test_overflow_guard(self):
        sweep = LatticeSweep(1)
        for _ in range(8):
            sweep.seed((1, 1), 1)
        with pytest.raises(AssertionError):
            sweep.run()

    def test_dropped_positions_beyond_2p(self):
        sweep = LatticeSweep(1)
        for _ in range(4):
            sweep.seed((1, 1), 1)  # value 4 = carry2 at position 3 > 2p-1
        sweep.run()
        assert sweep.dropped_positions

    def test_max_summands_tracked(self):
        sweep = LatticeSweep(2)
        for _ in range(3):
            sweep.seed((1, 1), 1)
        sweep.run()
        assert sweep.max_summands >= 3


class TestEvaluatorBasics:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            BitLevelEvaluator(0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            BitLevelEvaluator(2).accumulate([1], [1, 2])

    @pytest.mark.parametrize("exp", ["I", "II"])
    def test_empty_stream_returns_init(self, exp):
        ev = BitLevelEvaluator(3, exp)
        assert ev.accumulate([], [], z_init=21) == 21

    @pytest.mark.parametrize("exp", ["I", "II"])
    def test_single_product(self, exp):
        ev = BitLevelEvaluator(3, exp)
        assert ev.accumulate([5], [6]) == 30

    @pytest.mark.parametrize("exp", ["I", "II"])
    def test_p1(self, exp):
        ev = BitLevelEvaluator(1, exp)
        assert ev.accumulate([1], [1]) == 1
        assert ev.accumulate([1, 1], [1, 1]) == 0  # 2 mod 2^1


class TestEvaluatorCorrectness:
    @pytest.mark.parametrize("exp", ["I", "II"])
    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_exhaustive_single_small(self, exp, p):
        if p > 3:
            pytest.skip("exhaustive only for tiny p") if False else None
        ev = BitLevelEvaluator(p, exp)
        mask = (1 << (2 * p - 1)) - 1
        step = max(1, (1 << p) // 8)
        for a in range(0, 1 << p, step):
            for b in range(0, 1 << p, step):
                assert ev.accumulate([a], [b]) == (a * b) & mask

    @given(
        st.sampled_from(["I", "II"]),
        st.integers(1, 6),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_streams_mod_correct(self, exp, p, data):
        n = data.draw(st.integers(0, 6))
        xs = [data.draw(st.integers(0, (1 << p) - 1)) for _ in range(n)]
        ys = [data.draw(st.integers(0, (1 << p) - 1)) for _ in range(n)]
        z0 = data.draw(st.integers(0, (1 << (2 * p - 1)) - 1))
        ev = BitLevelEvaluator(p, exp)
        mask = (1 << (2 * p - 1)) - 1
        want = (z0 + sum(a * b for a, b in zip(xs, ys))) & mask
        assert ev.accumulate(xs, ys, z0) == want

    @pytest.mark.parametrize("exp", ["I", "II"])
    def test_exact_when_no_overflow(self, exp):
        # Small operands: the true value fits in 2p-1 bits, so the result
        # is exact, not just modular.
        p = 4
        ev = BitLevelEvaluator(p, exp)
        xs, ys = [1, 2, 3], [3, 2, 1]
        want = sum(a * b for a, b in zip(xs, ys))
        assert want < (1 << (2 * p - 1))
        assert ev.accumulate(xs, ys) == want


class TestUniformityClaims:
    """Section 3.2's qualitative comparison of the expansions."""

    def test_expansion1_fewer_summands_interior(self):
        # Expansion I: at most 3 summands except in the final iteration
        # (plus boundary-completion effects at the i2 = p column).
        ev = BitLevelEvaluator(4, "I")
        ev.accumulate([5, 9, 3], [7, 2, 11])
        assert ev.max_summands <= 5

    def test_expansion2_needs_four_or_five(self):
        # Expansion II sums 4-5 bits on the i1 = p hyperplane.
        ev = BitLevelEvaluator(4, "II")
        ev.accumulate([15, 15, 15], [15, 15, 15])
        assert 4 <= ev.max_summands <= 5

    def test_expansion1_single_iteration_is_plain_multiplier(self):
        ev = BitLevelEvaluator(3, "I")
        ev.accumulate([7], [7])
        # One iteration: pp + z_prev(absent) + carries only.
        assert ev.max_summands <= 4
