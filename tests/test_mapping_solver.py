"""Tests for the solver-backed search, Pareto frontiers, and sharding.

Three contracts are pinned here:

* **equivalence** -- the branch-and-prune solver strategy returns designs
  identical to the exhaustive catalog strategy (same ``T``s, same
  metrics, same order) while enumerating far fewer candidates;
* **Pareto algebra** -- dominance is irreflexive/antisymmetric/transitive
  on random triples, frontiers are deterministic under permutation, and
  :func:`merge_frontiers` is associative over arbitrary partitions;
* **shard determinism** -- :func:`run_sharded_search` produces
  byte-identical ``payload_json()`` for workers 1/2/4 and matches
  :func:`run_search`.
"""

import json
import random

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import word_model_structure
from repro.mapping import designs
from repro.mapping.engine import SearchConfig, run_search
from repro.mapping.interconnect import mesh_primitives
from repro.mapping.pareto import (
    METRIC_NAMES,
    FrontierPoint,
    dominates,
    frontier_payload,
    merge_frontiers,
    pareto_frontier,
)
from repro.mapping.shard import run_sharded_search
from repro import obs


def _signature(candidates):
    return [
        (c.mapping.rows, c.time, c.processors, c.wire_length)
        for c in candidates
    ]


def _word_instance():
    alg = word_model_structure(
        (1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 1), (2, 2, 2)
    )
    return alg, {}


def _bitlevel_instance():
    return matmul_bit_level(2, 2, "II"), {"u": 2, "p": 2}


class TestSearchConfigValidation:
    def test_strategy_choices(self):
        for strategy in ("auto", "catalog", "solver"):
            assert SearchConfig(strategy=strategy).strategy == strategy
        with pytest.raises(ValueError):
            SearchConfig(strategy="magic")

    def test_auto_resolves_to_solver(self):
        assert SearchConfig().resolved_strategy == "solver"
        assert SearchConfig(strategy="catalog").resolved_strategy == "catalog"

    def test_frontier_must_be_known_metrics(self):
        assert SearchConfig(frontier=["time"]).frontier == ("time",)
        with pytest.raises(ValueError):
            SearchConfig(frontier=("time", "beauty"))
        with pytest.raises(ValueError):
            SearchConfig(frontier=())

    def test_frontier_disables_early_stop(self):
        # The overcollect early-stop is a no-op under frontier=: a frontier
        # over an early-stopped prefix could drop non-dominated designs.
        capped = SearchConfig(max_candidates=5, overcollect=4)
        assert capped.stop_after == 20
        frontier = SearchConfig(
            max_candidates=5, overcollect=4, frontier=METRIC_NAMES
        )
        assert frontier.stop_after is None


class TestSolverEquivalence:
    @pytest.mark.parametrize("primitives", ["fig4", "mesh", "none"])
    def test_bitlevel_identical_to_catalog(self, primitives):
        alg, binding = _bitlevel_instance()
        prims = {
            "fig4": lambda: designs.fig4_primitives(2),
            "mesh": lambda: mesh_primitives(2),
            "none": lambda: None,
        }[primitives]()

        def run(strategy):
            return run_search(alg, binding, prims, SearchConfig(
                block_values=[2], max_candidates=5,
                strategy=strategy, persist_cache=False,
            ))

        assert _signature(run("solver")) == _signature(run("catalog"))

    def test_word_exhaustive_identical_to_catalog(self):
        alg, binding = _word_instance()

        def run(strategy):
            return run_search(alg, binding, mesh_primitives(2), SearchConfig(
                block_values=[2], max_candidates=None, overcollect=None,
                strategy=strategy, persist_cache=False,
            ))

        solver, catalog = run("solver"), run("catalog")
        assert solver, "exhaustive word search found no designs"
        assert _signature(solver) == _signature(catalog)

    def test_solver_enumerates_fewer_candidates(self):
        alg, binding = _bitlevel_instance()
        prims = designs.fig4_primitives(2)
        counts = {}
        for strategy in ("catalog", "solver"):
            with obs.collecting() as reg:
                run_search(alg, binding, prims, SearchConfig(
                    block_values=[2], max_candidates=5,
                    strategy=strategy, persist_cache=False,
                ))
            counts[strategy] = reg.counters["mapping.candidates_enumerated"]
        assert counts["catalog"] >= 3 * counts["solver"]


class TestParetoAlgebra:
    def test_dominance_axioms_on_random_triples(self):
        rng = random.Random(7)
        for _ in range(500):
            a, b, c = (
                tuple(rng.randint(0, 4) for _ in range(3)) for _ in range(3)
            )
            assert not dominates(a, a)  # irreflexive
            assert not (dominates(a, b) and dominates(b, a))  # antisymmetric
            if dominates(a, b) and dominates(b, c):  # transitive
                assert dominates(a, c)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates((1, 2), (1, 2, 3))

    def test_frontier_deterministic_under_permutation(self):
        rng = random.Random(11)
        points = [
            FrontierPoint(
                metrics=tuple(rng.randint(0, 3) for _ in range(3)),
                rows=((i,),),
            )
            for i in range(40)
        ]
        base = pareto_frontier(points)
        for _ in range(5):
            shuffled = points[:]
            rng.shuffle(shuffled)
            assert pareto_frontier(shuffled) == base

    def test_equal_metrics_tie_break_by_rows(self):
        a = FrontierPoint(metrics=(1, 1), rows=((2, 0),))
        b = FrontierPoint(metrics=(1, 1), rows=((1, 0),))
        # Both non-dominated (equal vectors dominate neither way), ordered
        # canonically by rows; exact duplicates collapse.
        assert pareto_frontier([a, b, a]) == [b, a]

    def test_merge_associative_over_partitions(self):
        rng = random.Random(23)
        points = [
            FrontierPoint(
                metrics=tuple(rng.randint(0, 4) for _ in range(3)),
                rows=((i, i + 1),),
            )
            for i in range(60)
        ]
        whole = pareto_frontier(points)
        for _ in range(5):
            shuffled = points[:]
            rng.shuffle(shuffled)
            cut1, cut2 = sorted(rng.sample(range(len(points)), 2))
            a, b, c = (
                shuffled[:cut1], shuffled[cut1:cut2], shuffled[cut2:]
            )
            left = merge_frontiers(merge_frontiers(a, b), c)
            right = merge_frontiers(a, merge_frontiers(b, c))
            flat = merge_frontiers(a, b, c)
            assert left == right == flat == whole
            assert frontier_payload(left) == frontier_payload(whole)


class TestFrontierSearch:
    def test_frontier_contains_only_nondominated_designs(self):
        alg, binding = _bitlevel_instance()
        found = run_search(alg, binding, mesh_primitives(2), SearchConfig(
            block_values=[2], max_candidates=None,
            frontier=METRIC_NAMES, persist_cache=False,
        ))
        assert found
        metrics = [
            (c.time, c.processors, c.wire_length) for c in found
        ]
        for i, m in enumerate(metrics):
            assert not any(
                dominates(other, m)
                for j, other in enumerate(metrics)
                if j != i
            )

    def test_frontier_ignores_overcollect(self):
        # overcollect would early-stop the scan after stop_after feasible
        # designs; under frontier= it must be ignored, so a tiny
        # overcollect returns the same frontier as none at all.
        alg, binding = _bitlevel_instance()

        def run(overcollect):
            return run_search(alg, binding, mesh_primitives(2), SearchConfig(
                block_values=[2], max_candidates=None,
                overcollect=overcollect, frontier=METRIC_NAMES,
                persist_cache=False,
            ))

        assert _signature(run(1)) == _signature(run(None))


class TestShardDeterminism:
    def _payloads(self, config, worker_counts=(1, 2, 4)):
        alg, binding = _bitlevel_instance()
        prims = designs.fig4_primitives(2)
        return alg, binding, prims, [
            run_sharded_search(
                alg, binding, prims, config, workers=w
            ).payload_json()
            for w in worker_counts
        ]

    def test_byte_identical_across_worker_counts_frontier(self):
        config = SearchConfig(
            block_values=[2], max_candidates=None,
            frontier=METRIC_NAMES, persist_cache=False,
        )
        _alg, _binding, _prims, payloads = self._payloads(config)
        assert payloads[0] == payloads[1] == payloads[2]

    def test_byte_identical_across_worker_counts_ranked(self):
        config = SearchConfig(
            block_values=[2], max_candidates=5, persist_cache=False,
        )
        alg, binding, prims, payloads = self._payloads(config)
        assert payloads[0] == payloads[1] == payloads[2]
        # ... and the sharded design list equals the in-process search.
        direct = run_search(alg, binding, prims, config)
        sharded = json.loads(payloads[0])["designs"]
        assert [
            (tuple(map(tuple, d["rows"])), d["time"], d["processors"],
             d["wire_length"])
            for d in sharded
        ] == _signature(direct)

    def test_shard_frontier_matches_run_search(self):
        alg, binding = _bitlevel_instance()
        prims = mesh_primitives(2)
        config = SearchConfig(
            block_values=[2], max_candidates=None,
            frontier=METRIC_NAMES, persist_cache=False,
        )
        result = run_sharded_search(alg, binding, prims, config, workers=2)
        direct = run_search(alg, binding, prims, config)
        assert result.frontier == [
            {
                "metrics": [c.time, c.processors, c.wire_length],
                "rows": [list(r) for r in c.mapping.rows],
            }
            for c in direct
        ]

    def test_shared_dir_reuses_published_blocks(self, tmp_path):
        alg, binding = _bitlevel_instance()
        prims = designs.fig4_primitives(2)
        config = SearchConfig(
            block_values=[2], max_candidates=5, persist_cache=False,
        )
        first = run_sharded_search(
            alg, binding, prims, config,
            workers=1, shard_dir=str(tmp_path),
        )
        with obs.collecting() as reg:
            second = run_sharded_search(
                alg, binding, prims, config,
                workers=1, shard_dir=str(tmp_path),
            )
        assert second.payload_json() == first.payload_json()
        # Every block was already published: no new claims were needed.
        assert reg.counters.get("mapping.shard.claims", 0) == 0
