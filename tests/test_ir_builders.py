"""Tests for repro.ir.builders: each builder reproduces its paper equation."""

import pytest

from repro.depanalysis import analyze
from repro.ir import builders


class TestMatmulPrograms:
    def test_naive_structure(self):
        prog = builders.matmul_naive(3)
        assert prog.dim == 3
        assert len(prog.statements) == 1

    def test_pipelined_dependences_eq_24(self):
        res = analyze(builders.matmul_pipelined(3), {"u": 3}, "exact")
        assert res.vectors_by_variable() == {
            "x": {(0, 1, 0)},
            "y": {(1, 0, 0)},
            "z": {(0, 0, 1)},
        }

    def test_naive_broadcast_reads(self):
        # x(j1,j3) and y(j3,j2) are rank-2 reads in a 3-D nest (broadcasts).
        prog = builders.matmul_naive()
        stmt = prog.statements[0]
        ranks = {acc.array: acc.rank for acc in stmt.reads}
        assert ranks["x"] == 2 and ranks["y"] == 2 and ranks["z"] == 3

    def test_word_structure_eq_24(self):
        alg = builders.matmul_word_structure()
        cols = {tuple(v.vector): set(v.causes) for v in alg.dependences}
        assert cols == {
            (1, 0, 0): {"y"},
            (0, 1, 0): {"x"},
            (0, 0, 1): {"z"},
        }
        assert alg.is_uniform


class TestAddShiftPrograms:
    def test_pipelined_dependences_eq_34(self):
        res = analyze(builders.addshift_pipelined(4), {"p": 4}, "exact")
        assert res.vectors_by_variable() == {
            "a": {(1, 0)},
            "b": {(0, 1)},
            "c": {(0, 1)},
            "s": {(1, -1)},
        }

    def test_broadcast_form_has_rank1_reads(self):
        prog = builders.addshift_broadcast()
        reads = {
            acc.array: acc.rank
            for s in prog.statements
            for acc in s.reads
        }
        assert reads["a"] == 1 and reads["b"] == 1

    def test_single_assignment(self):
        assert builders.addshift_pipelined(3).verify_single_assignment({"p": 3})


class TestModelBuilders:
    def test_model_1d_vectors(self):
        res = analyze(builders.model_1d(2, 1, 1, upper=6), {}, "exact")
        assert res.vectors_by_variable() == {
            "x": {(2,)},
            "y": {(1,)},
            "z": {(1,)},
        }

    def test_word_model_matches_structure(self):
        h1, h2, h3 = [1, 0], [1, -1], [0, 1]
        prog = builders.word_model(h1, h2, h3, [1, 1], [4, 3])
        res = analyze(prog, {}, "exact")
        alg = builders.word_model_structure(h1, h2, h3, [1, 1], [4, 3])
        assert set(res.distinct_vectors()) == {
            tuple(v.vector) for v in alg.dependences
        }

    def test_word_model_dim_mismatch(self):
        with pytest.raises(ValueError):
            builders.word_model([1], [1, 0], [1], [1], [3])

    def test_convolution_structure(self):
        alg = builders.convolution_word_structure(5, 3)
        cols = {tuple(v.vector): set(v.causes) for v in alg.dependences}
        assert cols == {
            (1, 0): {"x"},
            (1, -1): {"y"},
            (0, 1): {"z"},
        }
        assert alg.index_set.bounds({}) == [(1, 5), (1, 3)]

    def test_matvec_structure(self):
        alg = builders.matvec_word_structure(4)
        assert alg.dim == 2
        assert alg.is_uniform
        assert len(alg.dependences) >= 2  # x/z may merge on (0,1)

    def test_convolution_reuses_weights_along_j1(self):
        # The dependence analysis of the convolution program agrees with
        # the declared structure.
        prog = builders.word_model([1, 0], [1, -1], [0, 1], [1, 1], [5, 3])
        res = analyze(prog, {}, "enumerate")
        assert (1, -1) in res.vectors_by_variable()["y"]
