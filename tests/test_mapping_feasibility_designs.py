"""Tests for feasibility reports, the paper's designs, and geometry."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.mapping.feasibility import check_feasibility
from repro.mapping.spacetime import processor_count, processor_set, space_extents
from repro.mapping.transform import MappingMatrix


@pytest.fixture(scope="module")
def alg33():
    return matmul_bit_level(3, 3, "II")


BINDING33 = {"u": 3, "p": 3}


class TestFeasibilityFig4:
    def test_all_conditions_pass(self, alg33):
        rep = check_feasibility(
            designs.fig4_mapping(3), alg33, BINDING33,
            primitives=designs.fig4_primitives(3),
        )
        assert rep.feasible
        assert rep.schedule_valid
        assert rep.interconnect_ok
        assert rep.conflict_free
        assert rep.rank_ok
        assert rep.coprime_ok
        assert "ok" in rep.summary()

    def test_without_primitives_condition2_trivial(self, alg33):
        rep = check_feasibility(designs.fig4_mapping(3), alg33, BINDING33)
        assert rep.interconnect is None
        assert rep.feasible

    def test_bad_schedule_fails_condition1(self, alg33):
        t = MappingMatrix([[3, 0, 0, 1, 0], [0, 3, 0, 0, 1], [1, 1, 1, 1, 1]])
        rep = check_feasibility(t, alg33, BINDING33)
        assert not rep.schedule_valid
        assert not rep.feasible

    def test_rank_deficient_fails_condition4(self, alg33):
        t = MappingMatrix(
            [[3, 0, 0, 1, 0], [3, 0, 0, 1, 0], [1, 1, 1, 2, 1]]
        )
        rep = check_feasibility(t, alg33, BINDING33)
        assert not rep.rank_ok

    def test_non_coprime_fails_condition5(self, alg33):
        t = MappingMatrix(
            [[6, 0, 0, 2, 0], [0, 6, 0, 0, 2], [2, 2, 2, 4, 2]]
        )
        rep = check_feasibility(t, alg33, BINDING33)
        assert not rep.coprime_ok

    def test_mesh_only_fails_condition2(self, alg33):
        from repro.mapping.interconnect import mesh_primitives

        rep = check_feasibility(
            designs.fig4_mapping(3), alg33, BINDING33,
            primitives=mesh_primitives(2),
        )
        assert not rep.interconnect_ok
        assert not rep.feasible


class TestDesignFormulas:
    @pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (5, 4), (8, 6)])
    def test_t_fig4(self, u, p):
        assert designs.t_fig4(u, p) == 3 * (u - 1) + 3 * (p - 1) + 1

    @pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (5, 4)])
    def test_t_fig5_vs_printed(self, u, p):
        assert designs.t_fig5(u, p) - designs.t_fig5_printed(u, p) == 2 * (u - 1)

    def test_fig4_faster_than_fig5(self):
        for u, p in [(3, 3), (8, 8), (16, 8)]:
            assert designs.t_fig4(u, p) < designs.t_fig5(u, p)

    def test_processor_formulas(self):
        assert designs.fig4_processor_count(3, 4) == 9 * 16
        assert designs.fig5_processor_count(3, 4) == 144

    def test_word_level_time(self):
        # (3(u-1)+1) * t_b.
        assert designs.word_level_time(4, 3, "add-shift") == 10 * 21
        assert designs.word_level_time(4, 3, "carry-save") == 10 * 9

    def test_speedup_increases_with_p(self):
        s = [designs.speedup(32, p, "add-shift") for p in (2, 4, 8, 16)]
        assert s == sorted(s)
        assert s[-1] > 100

    def test_speedup_carry_save_smaller(self):
        assert designs.speedup(32, 8, "carry-save") < designs.speedup(
            32, 8, "add-shift"
        )


class TestGeometry:
    def test_fig4_processor_count_exact(self, alg33):
        t = designs.fig4_mapping(3)
        assert processor_count(t, alg33.index_set, BINDING33) == 81

    def test_fig5_same_processor_set(self, alg33):
        # Figs. 4 and 5 share the space mapping S.
        s4 = processor_set(designs.fig4_mapping(3), alg33.index_set, BINDING33)
        s5 = processor_set(designs.fig5_mapping(3), alg33.index_set, BINDING33)
        assert s4 == s5

    def test_extents(self, alg33):
        t = designs.fig4_mapping(3)
        assert space_extents(t, alg33.index_set, BINDING33) == [(4, 12), (4, 12)]

    def test_word_level_count(self):
        alg = matmul_word_structure()
        assert processor_count(designs.word_level_mapping(), alg.index_set, {"u": 4}) == 16

    @pytest.mark.parametrize("u,p", [(2, 2), (2, 3), (3, 2)])
    def test_formula_matches_enumeration(self, u, p):
        alg = matmul_bit_level(u, p)
        t = designs.fig4_mapping(p)
        assert (
            processor_count(t, alg.index_set, {"u": u, "p": p})
            == designs.fig4_processor_count(u, p)
        )
