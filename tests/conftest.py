"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for sampled tests."""
    return random.Random(0xBEEF)


def random_matrix(rng: random.Random, u: int, p: int) -> list[list[int]]:
    """A ``u x u`` matrix of ``p``-bit nonnegative integers."""
    return [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]


def reference_matmul(
    x: list[list[int]], y: list[list[int]], mask: int | None = None
) -> list[list[int]]:
    """Plain-integer matrix product, optionally reduced mod ``mask + 1``."""
    u = len(x)
    out = [
        [sum(x[i][k] * y[k][j] for k in range(u)) for j in range(u)]
        for i in range(u)
    ]
    if mask is not None:
        out = [[v & mask for v in row] for row in out]
    return out
