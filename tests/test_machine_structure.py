"""Tests for PEs, links, arrays, and the space-time value store."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.machine.array import SystolicArray
from repro.machine.links import Link, wire_length
from repro.machine.pe import ProcessorElement
from repro.machine.simulator import SpaceTimeSimulator, ValueStore
from repro.mapping import designs
from repro.mapping.feasibility import check_feasibility


class TestProcessorElement:
    def test_fire_records(self):
        pe = ProcessorElement((0, 0))
        pe.fire(3, (1, 1))
        assert pe.busy_cycles == 1
        assert pe.firings[3] == (1, 1)

    def test_conflict_raises(self):
        pe = ProcessorElement((0, 0))
        pe.fire(3, (1, 1))
        with pytest.raises(ValueError):
            pe.fire(3, (2, 2))

    def test_refire_same_point_ok(self):
        pe = ProcessorElement((0, 0))
        pe.fire(3, (1, 1))
        pe.fire(3, (1, 1))
        assert pe.busy_cycles == 1

    def test_utilization(self):
        pe = ProcessorElement((0,))
        pe.fire(1, (1,))
        pe.fire(2, (2,))
        assert pe.utilization(4) == 0.5
        assert pe.utilization(0) == 0.0


class TestLink:
    def test_wire_length(self):
        assert wire_length((3, 0)) == 3
        assert wire_length((1, -1)) == 1
        assert wire_length(()) == 0

    def test_valid_link(self):
        link = Link((0, 0), (1, -1), (1, -1))
        assert link.length == 1
        assert link.latency == 1

    def test_buffered_latency(self):
        link = Link((0, 0), (1, 0), (1, 0), buffers=1)
        assert link.latency == 2

    def test_endpoint_mismatch(self):
        with pytest.raises(ValueError):
            Link((0, 0), (2, 0), (1, 0))


class TestValueStore:
    def make(self):
        return ValueStore(designs.word_level_mapping())

    def test_put_get(self):
        s = self.make()
        s.put("x", (1, 1, 1), 7)
        assert s.get("x", (1, 1, 1)) == 7

    def test_default_for_boundary(self):
        s = self.make()
        assert s.get("x", (0, 0, 0), default=0) == 0

    def test_missing_without_default(self):
        s = self.make()
        with pytest.raises(KeyError):
            s.get("x", (0, 0, 0))

    def test_double_write_rejected(self):
        s = self.make()
        s.put("x", (1, 1, 1), 1)
        with pytest.raises(AssertionError):
            s.put("x", (1, 1, 1), 2)

    def test_causality_violation(self):
        s = self.make()
        s.put("x", (2, 2, 2), 1)  # produced at time 6
        s._set_time(5)
        with pytest.raises(AssertionError):
            s.get("x", (2, 2, 2))

    def test_causality_ok_when_earlier(self):
        s = self.make()
        s.put("x", (1, 1, 1), 1)  # t = 3
        s._set_time(4)
        assert s.get("x", (1, 1, 1)) == 1

    def test_pending_accumulates(self):
        s = self.make()
        s.add_pending("nr", (1, 1, 1), 1)
        s.add_pending("nr", (1, 1, 1), 1)
        assert s.pop_pending("nr", (1, 1, 1)) == 2
        assert s.pop_pending("nr", (1, 1, 1)) == 0


class TestSystolicArray:
    def build(self, u=2, p=2, design="fig4"):
        alg = matmul_bit_level(u, p, "II")
        binding = {"u": u, "p": p}
        if design == "fig4":
            t = designs.fig4_mapping(p)
            prims = designs.fig4_primitives(p)
        else:
            t = designs.fig5_mapping(p)
            prims = designs.fig5_primitives()
        rep = check_feasibility(t, alg, binding, primitives=prims)
        return SystolicArray(t, alg, binding, rep.interconnect)

    def test_fig4_pe_count(self):
        assert self.build(2, 2, "fig4").processor_count == 16

    def test_fig4_has_long_wires(self):
        arr = self.build(2, 3, "fig4")
        assert arr.longest_wire == 3

    def test_fig5_nearest_neighbour_only(self):
        arr = self.build(2, 3, "fig5")
        assert arr.longest_wire == 1

    def test_fig4_buffers_present(self):
        arr = self.build(2, 2, "fig4")
        assert arr.buffer_count > 0

    def test_fig5_buffer_only_on_d4_link(self):
        arr = self.build(2, 2, "fig5")
        # Fig. 5 keeps Π'd̄₄ = 2 with a single hop, so the [1,0]ᵀ link is
        # buffered exactly as in Fig. 4; every other link is unbuffered.
        buffered = {
            link.primitive for link in arr.links.values() if link.buffers
        }
        assert buffered == {(1, 0)}

    def test_wire_totals(self):
        arr = self.build(2, 2, "fig5")
        assert arr.total_wire_length == arr.link_count  # all unit

    def test_extents(self):
        arr = self.build(2, 2, "fig4")
        assert arr.extents() == [(3, 6), (3, 6)]

    def test_no_interconnect_no_links(self):
        alg = matmul_bit_level(2, 2, "II")
        arr = SystolicArray(designs.fig4_mapping(2), alg, {"u": 2, "p": 2})
        assert arr.link_count == 0
        assert "PEs" in repr(arr)
