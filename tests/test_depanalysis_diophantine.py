"""Tests for bounded lattice enumeration."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.depanalysis.diophantine import (
    UnboundedLatticeError,
    bounded_lattice_points,
    lattice_intervals,
    reduce_basis,
)


def brute_force(particular, basis, bounds, t_range=30):
    """Reference: enumerate t̄ over a generous window and filter."""
    m = len(basis)
    n = len(particular)
    out = set()
    for ts in itertools.product(range(-t_range, t_range + 1), repeat=m):
        x = list(particular)
        for t, vec in zip(ts, basis):
            for i in range(n):
                x[i] += t * vec[i]
        if all(lo <= xi <= hi for xi, (lo, hi) in zip(x, bounds)):
            out.add(tuple(x))
    return out


class TestBasics:
    def test_no_basis_inside(self):
        pts = list(bounded_lattice_points([2, 3], [], [(1, 5), (1, 5)]))
        assert pts == [[2, 3]]

    def test_no_basis_outside(self):
        assert list(bounded_lattice_points([9, 3], [], [(1, 5), (1, 5)])) == []

    def test_one_direction(self):
        pts = {
            tuple(x)
            for x in bounded_lattice_points([0], [[1]], [(2, 5)])
        }
        assert pts == {(2,), (3,), (4,), (5,)}

    def test_scaled_direction(self):
        pts = {
            tuple(x)
            for x in bounded_lattice_points([0], [[3]], [(1, 10)])
        }
        assert pts == {(3,), (6,), (9,)}

    def test_two_directions(self):
        pts = {
            tuple(x)
            for x in bounded_lattice_points(
                [0, 0], [[1, 0], [0, 1]], [(1, 2), (1, 2)]
            )
        }
        assert pts == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_zero_basis_vector_reduced(self):
        # A zero basis vector adds nothing to the lattice: the solution set
        # is just the particular point (this used to raise
        # UnboundedLatticeError because t_0 had no box constraint).
        pts = list(
            bounded_lattice_points([0, 0], [[0, 0]], [(0, 5), (0, 5)])
        )
        assert pts == [[0, 0]]

    def test_parallel_directions_reduced(self):
        # Two identical generators span a rank-1 lattice; each solution
        # must be visited exactly once despite the redundant direction.
        pts = list(
            bounded_lattice_points(
                [0, 0], [[1, 2], [1, 2]], [(0, 5), (0, 5)]
            )
        )
        assert sorted(map(tuple, pts)) == [(0, 0), (1, 2), (2, 4)]
        assert len(pts) == len({tuple(x) for x in pts})

    def test_coupled_direction_bounded(self):
        # Direction (1, -1): both coordinates boxed, so t is bounded.
        pts = {
            tuple(x)
            for x in bounded_lattice_points(
                [3, 3], [[1, -1]], [(1, 5), (1, 5)]
            )
        }
        assert pts == {(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)}

    def test_fixed_coordinate_infeasible(self):
        # Coordinate not touched by any basis vector and outside the box.
        assert (
            list(bounded_lattice_points([7, 0], [[0, 1]], [(1, 5), (1, 5)]))
            == []
        )

    def test_bounds_length_mismatch(self):
        with pytest.raises(ValueError):
            list(bounded_lattice_points([1, 2], [], [(1, 5)]))

    def test_infeasible_by_propagation(self):
        # x = 10 t in [1, 5]: no integer t.
        assert list(bounded_lattice_points([0], [[10]], [(1, 5)])) == []


class TestRankDeficientRegression:
    """The latent duplicate-solution issue: a rank-deficient generator set
    makes ``t̄ -> x`` non-injective.  The old code refused such inputs with
    ``UnboundedLatticeError``; the fix reduces the generators to an
    independent basis of the same lattice and enumerates exactly once."""

    def test_reduce_basis_keeps_independent_bases_verbatim(self):
        basis = [[1, 0], [0, 2]]
        assert reduce_basis(basis) == [[1, 0], [0, 2]]

    def test_reduce_basis_drops_zero_rows(self):
        assert reduce_basis([[0, 0], [0, 3]]) == [[0, 3]]
        assert reduce_basis([[0, 0]]) == []

    def test_reduce_basis_same_lattice(self):
        # {[2,0],[1,1],[3,1]} is rank 2; the reduced basis must generate
        # the same lattice (compare by membership over a window).
        basis = [[2, 0], [1, 1], [3, 1]]
        reduced = reduce_basis(basis)
        assert len(reduced) == 2

        def span(vectors, t_range=6):
            out = set()
            for ts in itertools.product(
                range(-t_range, t_range + 1), repeat=len(vectors)
            ):
                x = [0, 0]
                for t, vec in zip(ts, vectors):
                    x = [a + t * b for a, b in zip(x, vec)]
                if all(-4 <= c <= 4 for c in x):
                    out.add(tuple(x))
            return out

        assert span(reduced) == span(basis)

    def test_dependent_generators_enumerate_exactly_once(self):
        pts = list(
            bounded_lattice_points(
                [0, 0], [[1, 1], [2, 2], [0, 0]], [(0, 4), (0, 4)]
            )
        )
        assert sorted(map(tuple, pts)) == [
            (0, 0), (1, 1), (2, 2), (3, 3), (4, 4)
        ]
        assert len(pts) == len(set(map(tuple, pts)))

    def test_lattice_intervals_reduces_too(self):
        # Degenerate generators used to raise; the intervals now describe
        # the reduced (independent) directions.
        intervals = lattice_intervals(
            [0, 0], [[1, 2], [1, 2]], [(0, 5), (0, 5)]
        )
        assert intervals == [(0, 2)]


class TestAgainstBruteForce:
    @given(
        st.lists(st.integers(-4, 4), min_size=2, max_size=3),
        st.lists(
            st.lists(st.integers(-2, 2), min_size=2, max_size=3),
            min_size=1,
            max_size=2,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, particular, basis):
        n = len(particular)
        basis = [
            (vec * n)[:n] for vec in basis
        ]
        bounds = [(-3, 3)] * n
        yielded = [
            tuple(x)
            for x in bounded_lattice_points(particular, basis, bounds)
        ]
        got = set(yielded)
        want = brute_force(particular, basis, bounds)
        # The enumerator must produce exactly the lattice points in the box,
        # each exactly once -- degenerate generator sets included, now that
        # they are reduced to an independent basis up front.
        assert got == want
        assert len(yielded) == len(got)
