"""Tests for bounded lattice enumeration."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.depanalysis.diophantine import (
    UnboundedLatticeError,
    bounded_lattice_points,
)


def brute_force(particular, basis, bounds, t_range=30):
    """Reference: enumerate t̄ over a generous window and filter."""
    m = len(basis)
    n = len(particular)
    out = set()
    for ts in itertools.product(range(-t_range, t_range + 1), repeat=m):
        x = list(particular)
        for t, vec in zip(ts, basis):
            for i in range(n):
                x[i] += t * vec[i]
        if all(lo <= xi <= hi for xi, (lo, hi) in zip(x, bounds)):
            out.add(tuple(x))
    return out


class TestBasics:
    def test_no_basis_inside(self):
        pts = list(bounded_lattice_points([2, 3], [], [(1, 5), (1, 5)]))
        assert pts == [[2, 3]]

    def test_no_basis_outside(self):
        assert list(bounded_lattice_points([9, 3], [], [(1, 5), (1, 5)])) == []

    def test_one_direction(self):
        pts = {
            tuple(x)
            for x in bounded_lattice_points([0], [[1]], [(2, 5)])
        }
        assert pts == {(2,), (3,), (4,), (5,)}

    def test_scaled_direction(self):
        pts = {
            tuple(x)
            for x in bounded_lattice_points([0], [[3]], [(1, 10)])
        }
        assert pts == {(3,), (6,), (9,)}

    def test_two_directions(self):
        pts = {
            tuple(x)
            for x in bounded_lattice_points(
                [0, 0], [[1, 0], [0, 1]], [(1, 2), (1, 2)]
            )
        }
        assert pts == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_unbounded_raises(self):
        # A zero basis vector leaves its lattice coordinate unconstrained.
        with pytest.raises(UnboundedLatticeError):
            list(
                bounded_lattice_points([0, 0], [[0, 0]], [(0, 5), (0, 5)])
            )

    def test_parallel_directions_unbounded(self):
        # Two identical directions: only their sum is constrained.
        with pytest.raises(UnboundedLatticeError):
            list(
                bounded_lattice_points(
                    [0, 0], [[1, 2], [1, 2]], [(0, 5), (0, 5)]
                )
            )

    def test_coupled_direction_bounded(self):
        # Direction (1, -1): both coordinates boxed, so t is bounded.
        pts = {
            tuple(x)
            for x in bounded_lattice_points(
                [3, 3], [[1, -1]], [(1, 5), (1, 5)]
            )
        }
        assert pts == {(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)}

    def test_fixed_coordinate_infeasible(self):
        # Coordinate not touched by any basis vector and outside the box.
        assert (
            list(bounded_lattice_points([7, 0], [[0, 1]], [(1, 5), (1, 5)]))
            == []
        )

    def test_bounds_length_mismatch(self):
        with pytest.raises(ValueError):
            list(bounded_lattice_points([1, 2], [], [(1, 5)]))

    def test_infeasible_by_propagation(self):
        # x = 10 t in [1, 5]: no integer t.
        assert list(bounded_lattice_points([0], [[10]], [(1, 5)])) == []


class TestAgainstBruteForce:
    @given(
        st.lists(st.integers(-4, 4), min_size=2, max_size=3),
        st.lists(
            st.lists(st.integers(-2, 2), min_size=2, max_size=3),
            min_size=1,
            max_size=2,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, particular, basis):
        n = len(particular)
        basis = [
            (vec * n)[:n] for vec in basis
        ]
        bounds = [(-3, 3)] * n
        try:
            got = {
                tuple(x)
                for x in bounded_lattice_points(particular, basis, bounds)
            }
        except UnboundedLatticeError:
            # Some basis vector is null or escapes the box constraints;
            # brute force over a window can't certify either, skip.
            return
        want = brute_force(particular, basis, bounds)
        # The enumerator must produce exactly the lattice points in the box
        # (duplicates allowed if basis is degenerate; compare as sets).
        assert got == want
