"""Tests for repro.structures.params (linear symbolic expressions)."""

import pytest
from hypothesis import given, strategies as st

from repro.structures.params import LinExpr, S, as_linexpr


class TestConstruction:
    def test_symbol(self):
        p = S("p")
        assert p.params() == {"p"}
        assert not p.is_constant

    def test_constant(self):
        c = LinExpr.constant(5)
        assert c.is_constant
        assert c.constant_value() == 5

    def test_constant_value_raises_on_symbolic(self):
        with pytest.raises(ValueError):
            S("p").constant_value()

    def test_zero_coeffs_dropped(self):
        e = LinExpr(3, {"p": 0})
        assert e.is_constant

    def test_as_linexpr_int(self):
        assert as_linexpr(7) == LinExpr(7)

    def test_as_linexpr_passthrough(self):
        e = S("u")
        assert as_linexpr(e) is e

    def test_as_linexpr_rejects_float(self):
        with pytest.raises(TypeError):
            as_linexpr(1.5)


class TestArithmetic:
    def test_add(self):
        e = S("p") + 1
        assert e.evaluate({"p": 3}) == 4

    def test_radd(self):
        e = 1 + S("p")
        assert e.evaluate({"p": 3}) == 4

    def test_sub(self):
        e = 2 * S("p") - 1
        assert e.evaluate({"p": 4}) == 7

    def test_rsub(self):
        e = 10 - S("p")
        assert e.evaluate({"p": 4}) == 6

    def test_mul(self):
        e = S("p") * 3
        assert e.evaluate({"p": 2}) == 6

    def test_rmul(self):
        assert (3 * S("p")).evaluate({"p": 2}) == 6

    def test_mul_by_constant_linexpr(self):
        assert (S("p") * LinExpr(2)).evaluate({"p": 5}) == 10

    def test_mul_symbolic_rejected(self):
        with pytest.raises(TypeError):
            S("p") * S("u")

    def test_neg(self):
        assert (-S("p")).evaluate({"p": 3}) == -3

    def test_mixed_params(self):
        e = S("p") + 2 * S("u") - 3
        assert e.evaluate({"p": 1, "u": 5}) == 8

    def test_cancellation(self):
        e = S("p") - S("p")
        assert e.is_constant
        assert e.constant_value() == 0

    @given(
        st.integers(-20, 20), st.integers(-20, 20),
        st.integers(-20, 20), st.integers(1, 20),
    )
    def test_affine_evaluation(self, a, b, c, pv):
        e = a * S("p") + b * S("u") + c
        assert e.evaluate({"p": pv, "u": 2 * pv}) == a * pv + b * 2 * pv + c


class TestEqualityHash:
    def test_equal_expressions(self):
        assert S("p") + 1 == 1 + S("p")

    def test_int_comparison(self):
        assert LinExpr(4) == 4

    def test_hash_consistency(self):
        assert hash(S("p") + 1) == hash(1 + S("p"))

    def test_inequality(self):
        assert S("p") != S("u")

    def test_usable_as_dict_key(self):
        d = {S("p"): "word length"}
        assert d[LinExpr.symbol("p")] == "word length"

    def test_evaluate_missing_param_raises(self):
        with pytest.raises(KeyError):
            S("p").evaluate({})


class TestFormatting:
    def test_str_symbol(self):
        assert str(S("p")) == "p"

    def test_str_affine(self):
        assert str(2 * S("p") - 1) == "2*p - 1"

    def test_str_negative_leading(self):
        assert str(-S("p")) == "-p"

    def test_str_zero(self):
        assert str(LinExpr(0)) == "0"
