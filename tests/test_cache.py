"""Tests for the persistent artifact cache: serde, keys, store, policy.

A cache hit must be indistinguishable from a recomputation, so the tests
here demand *exact* round-trips (equal and equal-hashing objects), stable
content-addressed keys under renaming, and end-to-end parity between
cached and uncached analysis runs.
"""

import json
import os

import pytest

from repro.cache import (
    ArtifactCache,
    SCHEMA_VERSION,
    Uncacheable,
    Unserializable,
    algorithm_from_payload,
    algorithm_to_payload,
    analysis_key,
    analysis_result_from_payload,
    analysis_result_to_payload,
    condition_from_payload,
    condition_to_payload,
    decode_obj,
    encode_obj,
    resolve_cache,
    structure_key,
    system_key,
)
from repro.depanalysis import AnalysisConfig, analyze
from repro.expansion.theorem31 import bit_level_structure, matmul_bit_level
from repro.ir import builders
from repro.ir.builders import word_model_structure
from repro.ir.expand import expand_bit_level


class TestTaggedCodec:
    CASES = [
        None,
        True,
        7,
        "s",
        (1, 2),
        [1, (2, 3), "x"],
        {"k": (1, [2])},
        {(1, 2): [3, (4,)]},
        ("lattice", ((1, 0), (0, 1)), ((-2, 2), (-2, 2)), None),
    ]

    @pytest.mark.parametrize("value", CASES)
    def test_round_trip(self, value):
        encoded = encode_obj(value)
        json.dumps(encoded)  # must be JSON-safe
        assert decode_obj(encoded) == value

    def test_tuple_list_distinction(self):
        assert decode_obj(encode_obj((1, 2))) == (1, 2)
        assert decode_obj(encode_obj([1, 2])) == [1, 2]
        assert type(decode_obj(encode_obj((1, 2)))) is tuple
        assert type(decode_obj(encode_obj([1, 2]))) is list

    def test_unencodable(self):
        with pytest.raises(Unserializable):
            encode_obj(object())


class TestStructureSerde:
    def test_condition_round_trip(self):
        alg = matmul_bit_level(3, 3, "II")
        for vec in alg.dependences:
            back = condition_from_payload(condition_to_payload(vec.validity))
            assert back == vec.validity
            assert hash(back) == hash(vec.validity)

    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_algorithm_round_trip(self, expansion):
        alg = matmul_bit_level(2, 3, expansion)
        payload = algorithm_to_payload(alg)
        json.dumps(payload)
        back = algorithm_from_payload(payload)
        assert back.index_set == alg.index_set
        assert list(back.dependences) == list(alg.dependences)
        assert back.name == alg.name
        assert back.computations.statements == alg.computations.statements

    def test_semantics_not_cacheable(self):
        prog = builders.matmul_pipelined(2)
        alg = word_model_structure([1, 0], [0, 1], [1, 1], [1, 1], [3, 3])
        del prog
        object.__setattr__  # silence lint: attribute poke below is the test
        alg.computations.semantics = lambda *a: None
        with pytest.raises(Unserializable):
            algorithm_to_payload(alg)

    def test_analysis_result_round_trip(self):
        result = analyze(builders.matmul_pipelined(3), {"u": 3}, "exact",
                         config=AnalysisConfig(cache=False))
        payload = analysis_result_to_payload(result)
        json.dumps(payload)
        back = analysis_result_from_payload(payload)
        assert [i.key() for i in back.instances] == [
            i.key() for i in result.instances
        ]
        assert back.stats == result.stats


class TestKeys:
    def test_analysis_key_stable_under_renaming(self):
        a = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        b = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        assert analysis_key(a, {}, "exact", True) == \
            analysis_key(b, {}, "exact", True)

    def test_analysis_key_separates_method_and_screens(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        keys = {
            analysis_key(prog, {}, "exact", True),
            analysis_key(prog, {}, "exact", False),
            analysis_key(prog, {}, "enumerate", True),
        }
        assert len(keys) == 3

    def test_enumerate_ignores_screens_flag(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        assert analysis_key(prog, {}, "enumerate", True) == \
            analysis_key(prog, {}, "enumerate", False)

    def test_analysis_key_binding_sensitivity(self):
        prog = builders.addshift_pipelined(None)
        assert analysis_key(prog, {"p": 3}, "exact", True) != \
            analysis_key(prog, {"p": 4}, "exact", True)

    def test_unbound_param_uncacheable(self):
        prog = builders.addshift_pipelined(None)
        with pytest.raises(Uncacheable):
            analysis_key(prog, {}, "exact", True)

    def test_structure_key_depends_on_inputs(self):
        word = word_model_structure([0, 1, 0], [1, 0, 0], [0, 0, 1],
                                    [1, 1, 1], [3, 3, 3])
        base = structure_key(word, "add-shift", "II", 3)
        assert base == structure_key(word, "add-shift", "II", 3)
        assert base != structure_key(word, "add-shift", "I", 3)
        assert base != structure_key(word, "add-shift", "II", 4)
        assert base != structure_key(word, "carry-save", "II", 3)

    def test_system_key_hnf_canonical(self):
        # Row-equivalent systems share a key: [j1 - j2 = 1] written two ways.
        a = system_key(((1, -1), (2, -2)), (1, 2))
        b = system_key(((1, -1),), (1,))
        assert a == b
        assert system_key(((1, -1),), (1,)) != system_key(((1, -1),), (2,))


class TestStore:
    def test_put_get_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("k", "ab" * 32) is None
        cache.put("k", "ab" * 32, {"x": [1, 2]})
        assert cache.get("k", "ab" * 32) == {"x": [1, 2]}
        assert cache.hits == 1 and cache.misses == 1

    def test_layout_versioned(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("analysis", "deadbeef", 1)
        path = tmp_path / f"v{SCHEMA_VERSION}" / "analysis" / "de"
        assert (path / "deadbeef.json").exists()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", "feedface", [1])
        path = cache._path("k", "feedface")
        path.write_text("{not json")
        assert cache.get("k", "feedface") is None
        assert not path.exists()

    def test_lru_eviction(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1)
        cache.put("k", "aa1", list(range(50)))
        cache.put("k", "bb2", list(range(50)))
        # Cap of one byte: the eviction pass leaves at most one entry.
        assert cache.stats()["entries"] <= 1
        assert cache.evictions >= 1

    def test_eviction_is_lru(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=10**9)
        cache.put("k", "old1", list(range(50)))
        cache.put("k", "new2", list(range(50)))
        os.utime(cache._path("k", "old1"), (1, 1))  # force "old" recency
        cache.max_bytes = cache.stats()["bytes"] - 1
        cache.put("k", "cc3", [1])
        remaining = {p.stem for p, _ in cache._entries()}
        assert "old1" not in remaining
        assert "new2" in remaining

    def test_stats_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("analysis", "aa", 1)
        cache.put("structure", "bb", 2)
        st = cache.stats()
        assert st["entries"] == 2
        assert st["kinds"] == {"analysis": 1, "structure": 1}
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_clear_only_touches_versioned_dirs(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", "aa", 1)
        keep = tmp_path / "user-data.txt"
        keep.write_text("precious")
        cache.clear()
        assert keep.read_text() == "precious"


class TestPolicy:
    def test_disabled_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None, None) is None

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = resolve_cache(None, None)
        assert cache is not None and cache.base == tmp_path

    def test_explicit_dir_enables(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None, tmp_path) is not None

    def test_false_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache(False, None) is None


class TestEndToEnd:
    def _config(self, tmp_path, backend=None):
        return AnalysisConfig(backend=backend, cache=True, cache_dir=tmp_path)

    @pytest.mark.parametrize("method", ["exact", "enumerate"])
    def test_analysis_cache_parity(self, tmp_path, method):
        prog = expand_bit_level([0, 1], [1, 0], [0, 1], [1, 1], [2, 2], 2,
                                "II")
        config = self._config(tmp_path)
        cold = analyze(prog, {"p": 2}, method, config=config)
        warm = analyze(prog, {"p": 2}, method, config=config)
        uncached = analyze(prog, {"p": 2}, method,
                           config=AnalysisConfig(cache=False))
        for other in (warm, uncached):
            assert [i.key() for i in cold.instances] == [
                i.key() for i in other.instances
            ]
            assert cold.stats == other.stats
            # Exact round-trip includes dict key *order*, not just equality.
            assert list(cold.stats) == list(other.stats)

    def test_cache_shared_across_backends(self, tmp_path):
        # The entry is keyed on the problem, not the backend: a scalar run
        # warms the cache for a batched one.
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        analyze(prog, {}, "exact",
                config=self._config(tmp_path, backend="scalar"))
        cache = ArtifactCache(tmp_path)
        assert cache.stats()["entries"] == 1
        analyze(prog, {}, "exact",
                config=self._config(tmp_path, backend="batched"))
        assert ArtifactCache(tmp_path).stats()["entries"] == 1

    def test_structure_cache_round_trip(self, tmp_path):
        word = word_model_structure([0, 1, 0], [1, 0, 0], [0, 0, 1],
                                    [1, 1, 1], [3, 3, 3])
        config = AnalysisConfig(cache=True, cache_dir=tmp_path)
        cold = bit_level_structure(word, "add-shift", "II", 3, config=config)
        assert ArtifactCache(tmp_path).stats()["kinds"] == {"structure": 1}
        warm = bit_level_structure(word, "add-shift", "II", 3, config=config)
        assert list(warm.dependences) == list(cold.dependences)
        assert warm.index_set == cold.index_set
        assert warm.name == cold.name

    def test_corrupted_analysis_entry_recomputed(self, tmp_path):
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        config = self._config(tmp_path)
        cold = analyze(prog, {}, "exact", config=config)
        cache = ArtifactCache(tmp_path)
        (path, _stat), = cache._entries()
        path.write_text(json.dumps({"wrong": "shape"}))
        again = analyze(prog, {}, "exact", config=config)
        assert [i.key() for i in again.instances] == [
            i.key() for i in cold.instances
        ]

    def test_cache_obs_counters(self, tmp_path):
        from repro import obs

        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        config = self._config(tmp_path)
        with obs.collecting() as reg:
            analyze(prog, {}, "exact", config=config)
            analyze(prog, {}, "exact", config=config)
        counters = dict(reg.counters)
        assert counters.get("cache.misses") == 1
        assert counters.get("cache.writes") == 1
        assert counters.get("cache.hits") == 1


class TestSharedStats:
    """The cross-process stats ledger: atomic, delta-based, lock-guarded.

    Regression for the double-reporting bug: each process used to dump
    its *cumulative* session counters into the shared stats file, so two
    processes (or two flushes) sharing a store dir counted the same hits
    twice.  The ledger now accumulates per-flush deltas under the store's
    file lock, which makes flushing idempotent and cross-process totals
    exact sums.
    """

    def _one_session(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get("k", "ab" * 32)          # miss
        cache.put("k", "ab" * 32, [1, 2])  # write
        cache.get("k", "ab" * 32)          # hit
        return cache

    def test_flush_is_idempotent(self, tmp_path):
        cache = self._one_session(tmp_path)
        first = cache.flush_stats()
        again = cache.flush_stats()
        third = cache.stats()["store"]
        assert first == again == third
        assert first["hits"] == 1
        assert first["misses"] == 1
        assert first["writes"] == 1

    def test_two_sessions_sum_not_double(self, tmp_path):
        a = self._one_session(tmp_path)
        a.flush_stats()
        a.flush_stats()  # re-flush must not re-add the same deltas
        b = ArtifactCache(tmp_path)
        b.get("k", "ab" * 32)  # hit (entry written by session a)
        b.get("k", "cd" * 32)  # miss
        b.flush_stats()
        totals = ArtifactCache(tmp_path).stats()["store"]
        assert totals["hits"] == 2
        assert totals["misses"] == 2
        assert totals["writes"] == 1

    def test_cross_process_totals_are_exact(self, tmp_path):
        import subprocess
        import sys

        script = (
            "from repro.cache import ArtifactCache; "
            f"c = ArtifactCache({str(tmp_path)!r}); "
            "c.get('k', 'ee' * 32); "
            "c.put('k', 'ee' * 32, [1]); "
            "c.get('k', 'ee' * 32); "
            "c.flush_stats(); c.flush_stats()"
        )
        for _ in range(2):
            subprocess.run(
                [sys.executable, "-c", script], check=True,
                env={**os.environ, "PYTHONPATH": "src"},
            )
        totals = ArtifactCache(tmp_path).stats()["store"]
        # First process: miss, write, hit.  Second: hit, write, hit.
        # Every increment lands exactly once despite double flushes.
        assert totals["misses"] == 1
        assert totals["writes"] == 2
        assert totals["hits"] == 3

    def test_stats_ledger_is_not_a_cache_entry(self, tmp_path):
        cache = self._one_session(tmp_path)
        cache.flush_stats()
        st = cache.stats()
        assert st["entries"] == 1
        assert cache.clear() == 1
        # A fresh flush after clear must not resurrect pre-clear deltas.
        assert cache.flush_stats()["hits"] == 0

    def test_concurrent_flushes_lose_nothing(self, tmp_path):
        import threading

        caches = []
        for _ in range(4):
            cache = ArtifactCache(tmp_path)
            cache.hits = 25  # simulate 25 hits in this "process"
            caches.append(cache)
        threads = [
            threading.Thread(target=c.flush_stats) for c in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ArtifactCache(tmp_path).stats()["store"]["hits"] == 100


class TestFileLock:
    def test_mutual_exclusion_across_threads(self, tmp_path):
        import threading

        from repro.cache import FileLock

        counter_file = tmp_path / "counter.txt"
        counter_file.write_text("0")

        def bump():
            for _ in range(25):
                with FileLock(tmp_path / "guard.lock") as lock:
                    assert lock.held
                    value = int(counter_file.read_text())
                    counter_file.write_text(str(value + 1))

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter_file.read_text() == "100"

    def test_reentrant_within_a_thread(self, tmp_path):
        from repro.cache import FileLock

        lock = FileLock(tmp_path / "guard.lock")
        with lock as outer:
            assert outer.held
            with lock as inner:
                assert inner.held
            assert lock.held
        assert not lock.held

    def test_contention_times_out_without_raising(self, tmp_path):
        from repro.cache import FileLock

        holder = FileLock(tmp_path / "guard.lock", timeout=1.0)
        assert holder.acquire()
        try:
            contender = FileLock(tmp_path / "guard.lock", timeout=0.05)
            with contender as lock:
                assert not lock.held  # degraded, not crashed
        finally:
            holder.release()
