"""Tests for the GCD and Banerjee screening tests."""

import pytest

from repro.depanalysis.banerjee import affine_range, banerjee_test
from repro.depanalysis.gcdtest import gcd_test
from repro.ir.expr import var
from repro.ir.program import ArrayAccess
from repro.structures.indexset import IndexSet


J = var("j")
K = var("k")
ORDER = ("j", "k")
BOX = IndexSet([1, 1], [10, 10], ORDER)


class TestGcdTest:
    def test_dependence_possible(self):
        w = ArrayAccess("a", [2 * J])
        r = ArrayAccess("a", [2 * K + 4])
        assert gcd_test(w, r, ORDER, {})

    def test_pruned_by_parity(self):
        # 2j' == 2k + 1 has no integer solutions.
        w = ArrayAccess("a", [2 * J])
        r = ArrayAccess("a", [2 * K + 1])
        assert not gcd_test(w, r, ORDER, {})

    def test_different_arrays_independent(self):
        w = ArrayAccess("a", [J])
        r = ArrayAccess("b", [J])
        assert not gcd_test(w, r, ORDER, {})

    def test_constant_subscripts_equal(self):
        w = ArrayAccess("a", [J - J + 3])
        r = ArrayAccess("a", [K - K + 3])
        assert gcd_test(w, r, ORDER, {})

    def test_constant_subscripts_unequal(self):
        w = ArrayAccess("a", [J - J + 3])
        r = ArrayAccess("a", [K - K + 5])
        assert not gcd_test(w, r, ORDER, {})

    def test_rank_mismatch_raises(self):
        w = ArrayAccess("a", [J])
        r = ArrayAccess("a", [J, K])
        with pytest.raises(ValueError):
            gcd_test(w, r, ORDER, {})

    def test_multi_subscript_all_must_pass(self):
        w = ArrayAccess("a", [J, 2 * J])
        r = ArrayAccess("a", [K, 2 * K + 1])
        assert not gcd_test(w, r, ORDER, {})

    def test_conservative_never_misses(self):
        # Same element a(5) written and read: dependence must be possible.
        w = ArrayAccess("a", [J])
        r = ArrayAccess("a", [K + 1])
        assert gcd_test(w, r, ORDER, {})


class TestAffineRange:
    def test_positive_coeffs(self):
        assert affine_range([2, 3], [(1, 4), (0, 2)]) == (2, 14)

    def test_negative_coeffs(self):
        assert affine_range([-1], [(2, 5)]) == (-5, -2)

    def test_mixed(self):
        assert affine_range([1, -1], [(1, 3), (1, 3)]) == (-2, 2)

    def test_empty(self):
        assert affine_range([], []) == (0, 0)


class TestBanerjeeTest:
    def test_dependence_possible(self):
        w = ArrayAccess("a", [J])
        r = ArrayAccess("a", [K + 1])
        assert banerjee_test(w, r, ORDER, BOX, {})

    def test_pruned_by_magnitude(self):
        # a(j') vs a(k + 100): offset exceeds the box spread.
        w = ArrayAccess("a", [J])
        r = ArrayAccess("a", [K + 100])
        assert not banerjee_test(w, r, ORDER, BOX, {})

    def test_different_arrays(self):
        w = ArrayAccess("a", [J])
        r = ArrayAccess("b", [J])
        assert not banerjee_test(w, r, ORDER, BOX, {})

    def test_boundary_exact(self):
        # Offset exactly the spread: still possible (j'=10, k=1).
        w = ArrayAccess("a", [J])
        r = ArrayAccess("a", [K - 9])
        assert banerjee_test(w, r, ORDER, BOX, {})
        # One more and it is pruned.
        r2 = ArrayAccess("a", [K - 10])
        assert not banerjee_test(w, r2, ORDER, BOX, {})

    def test_complement_of_gcd(self):
        # Passes GCD (gcd 1 divides everything) but fails Banerjee.
        w = ArrayAccess("a", [J])
        r = ArrayAccess("a", [K + 50])
        assert gcd_test(w, r, ORDER, {})
        assert not banerjee_test(w, r, ORDER, BOX, {})

    def test_symbolic_offset(self):
        from repro.structures.params import S

        w = ArrayAccess("a", [J])
        r = ArrayAccess("a", [K + S("u")])
        assert banerjee_test(w, r, ORDER, BOX, {"u": 5})
        assert not banerjee_test(w, r, ORDER, BOX, {"u": 50})
