"""Tests for the top-level analyzers: exact vs enumerate cross-check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.depanalysis import analyze
from repro.depanalysis.pairs import AnalysisResult, DependenceInstance, PointSet
from repro.ir import builders
from repro.ir.expand import expand_bit_level
from repro.ir.expr import var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.structures.indexset import IndexSet


class TestAgreement:
    """The two independent analyzer implementations must agree exactly."""

    PROGRAMS = [
        (builders.matmul_pipelined(3), {"u": 3}),
        (builders.addshift_pipelined(4), {"p": 4}),
        (builders.model_1d(1, 1, 1, upper=5), {}),
        (builders.model_1d(2, 1, 3, upper=7), {}),
        (builders.word_model([1, 0], [1, -1], [0, 1], [1, 1], [4, 3]), {}),
    ]

    @pytest.mark.parametrize("prog,binding", PROGRAMS)
    def test_exact_equals_enumerate(self, prog, binding):
        exact = analyze(prog, binding, "exact")
        enum = analyze(prog, binding, "enumerate")
        assert set(exact.instances) == set(enum.instances)

    def test_expanded_program_agreement(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "II")
        exact = analyze(prog, {}, "exact")
        enum = analyze(prog, {}, "enumerate")
        assert set(exact.instances) == set(enum.instances)

    def test_screens_do_not_change_result(self):
        prog = builders.matmul_pipelined(3)
        with_screens = analyze(prog, {"u": 3}, "exact", use_screens=True)
        without = analyze(prog, {"u": 3}, "exact", use_screens=False)
        assert set(with_screens.instances) == set(without.instances)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            analyze(builders.matmul_pipelined(2), {"u": 2}, "magic")


class TestInstanceSemantics:
    def test_instance_source(self):
        inst = DependenceInstance((3, 3), (1, 0), "x")
        assert inst.source == (2, 3)

    def test_flow_count_matmul(self):
        res = analyze(builders.matmul_pipelined(3), {"u": 3}, "enumerate")
        # 3 vectors, each with (u-1)*u² = 18 edges.
        assert len(res.instances) == 54
        assert all(i.kind == "flow" for i in res.instances)

    def test_edge_set(self):
        res = analyze(builders.model_1d(upper=3), {}, "enumerate")
        edges = res.edge_set()
        assert ((1,), (2,)) in edges and ((2,), (3,)) in edges

    def test_sinks_of(self):
        res = analyze(builders.model_1d(upper=4), {}, "enumerate")
        assert res.sinks_of((1,)) == {(2,), (3,), (4,)}

    def test_to_dependence_matrix(self):
        res = analyze(builders.addshift_pipelined(3), {"p": 3}, "enumerate")
        mat = res.to_dependence_matrix()
        assert {v.vector for v in mat} == {(1, 0), (0, 1), (1, -1)}
        by_vec = {v.vector: v for v in mat}
        assert set(by_vec[(0, 1)].causes) == {"b", "c"}
        # Validity of (1, -1): s-chain sinks have i1 >= 2, i2 <= p-1.
        for point in [(2, 1), (3, 2)]:
            assert by_vec[(1, -1)].valid_at(point, {})
        assert not by_vec[(1, -1)].valid_at((1, 2), {})

    def test_stats_present(self):
        res = analyze(builders.matmul_pipelined(2), {"u": 2}, "exact")
        assert res.stats["systems_solved"] > 0
        assert res.stats["instances"] == len(res.instances)

    def test_repr(self):
        res = analyze(builders.model_1d(upper=3), {}, "enumerate")
        assert "instances" in repr(res)


class TestPointSet:
    def test_holds(self):
        ps = PointSet([(1, 2), (3, 4)])
        assert ps.holds((1, 2), {})
        assert not ps.holds((2, 2), {})

    def test_equality_hash(self):
        assert PointSet([(1,)]) == PointSet([(1,)])
        assert len({PointSet([(1,)]), PointSet([(1,)])}) == 1

    def test_shift_axes(self):
        # A shifted point set tests the *suffix* of the probe point: the
        # set {(2, 3)} shifted by 1 holds at any (x, 2, 3).
        ps = PointSet([(2, 3)]).shift_axes(1)
        assert ps.offset == 1
        assert ps.holds((9, 2, 3), {})
        assert not ps.holds((2, 3, 9), {})

    def test_shift_axes_composes(self):
        ps = PointSet([(5,)]).shift_axes(1).shift_axes(2)
        assert ps.offset == 3
        assert ps.holds((0, 0, 0, 5), {})

    def test_shift_axes_equality_and_repr(self):
        assert PointSet([(1,)]).shift_axes(2) == PointSet([(1,)], offset=2)
        assert PointSet([(1,)], offset=2) != PointSet([(1,)])
        assert "offset=2" in repr(PointSet([(1,)], offset=2))

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            PointSet([(1,)], offset=-1)

    def test_mixed_widths_rejected(self):
        with pytest.raises(ValueError):
            PointSet([(1,), (1, 2)])

    def test_no_params(self):
        assert PointSet([(1,)]).params() == frozenset()


class TestErrorPaths:
    def test_non_single_assignment_detected(self):
        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [3], ("j",)),
            [Statement("S", ArrayAccess("z", [j - j]))],
        )
        with pytest.raises(ValueError):
            analyze(prog, {}, "enumerate")

    def test_reversed_dependence_classified(self):
        # Read of a *later* iteration's value: x(j) = f(x(j + 1)).
        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [4], ("j",)),
            [Statement("S", ArrayAccess("x", [j]), [ArrayAccess("x", [j + 1])])],
        )
        res = analyze(prog, {}, "enumerate")
        assert all(i.kind == "reversed" for i in res.instances)
        res_exact = analyze(prog, {}, "exact")
        assert set(res.instances) == set(res_exact.instances)


class TestRandomizedCrossCheck:
    """Property: the two analyzers agree on random uniform-shift programs."""

    @given(
        st.lists(st.integers(-2, 2), min_size=2, max_size=2),
        st.lists(st.integers(-2, 2), min_size=2, max_size=2),
        st.integers(2, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_two_statement_program(self, shift_a, shift_b, size):
        j1, j2 = var("j1"), var("j2")
        prog = LoopNest(
            ("j1", "j2"),
            IndexSet.cube(2, size),
            [
                Statement(
                    "A",
                    ArrayAccess("a", [j1, j2]),
                    [ArrayAccess("a", [j1 - shift_a[0], j2 - shift_a[1]])],
                ),
                Statement(
                    "B",
                    ArrayAccess("b", [j1, j2]),
                    [
                        ArrayAccess("b", [j1 - shift_b[0], j2 - shift_b[1]]),
                        ArrayAccess("a", [j1, j2]),
                    ],
                ),
            ],
        )
        exact = analyze(prog, {}, "exact")
        enum = analyze(prog, {}, "enumerate")
        assert set(exact.instances) == set(enum.instances)
