"""Differential backend-equivalence suite: compiled vs wavefront vs pointwise.

The compiled backend is only a speedup if it is *undetectable*: same
product, same :class:`~repro.machine.simulator.SimulationResult`, same
store contents, same ``machine.*`` metric values, same PE firing
records.  This module pins that down across

* the bit-level matmul machine (both designs x both expansions);
* every registered arithmetic structure, each on its machine path;
* the generic model-(3.5) machine and >= 20 seeded random feasible
  mappings (the compiled backend's generic fallback);
* the no-NumPy shim fallback;
* the kernel artifact cache: a warm load from disk must reproduce the
  cold compile byte for byte, and ``cache clear --kind kernel`` must
  remove only kernel entries.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.arith.baughwooley import BaughWooleyMultiplier
from repro.arith.registry import list_structures
from repro.compile.plan import clear_plan_memo, plan_for
from repro.compile.runner import clear_program_memo
from repro.machine import bitlevel as bitlevel_mod
from repro.machine import wavefront as wavefront_mod
from repro.machine import wordlevel as wordlevel_mod
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.model import BitLevelModelMachine
from repro.machine.signed import signed_matmul
from repro.machine.simulator import SpaceTimeSimulator
from repro.machine.wordlevel import WordLevelMatmulMachine
from repro.mapping import check_feasibility, designs
from repro.mapping.transform import MappingMatrix
from repro.verify.generator import gen_mapping_case
from tests.conftest import random_matrix, reference_matmul

BACKENDS = ("pointwise", "wavefront", "compiled")


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    """Equivalence runs compare metrics exactly; the kernel hit/miss
    counters only exist when the disk cache is active, so pin it off."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    clear_program_memo()


# ---------------------------------------------------------------------------
# Capture plumbing (same shape as tests/test_wavefront_equivalence.py)
# ---------------------------------------------------------------------------

class _CaptureSimulator(SpaceTimeSimulator):
    instances: list[SpaceTimeSimulator] = []

    def run(self, compute, kernel=None):
        type(self).instances.append(self)
        return super().run(compute, kernel)


@pytest.fixture
def capture(monkeypatch):
    _CaptureSimulator.instances = []
    monkeypatch.setattr(bitlevel_mod, "SpaceTimeSimulator", _CaptureSimulator)
    monkeypatch.setattr(wordlevel_mod, "SpaceTimeSimulator", _CaptureSimulator)
    return _CaptureSimulator.instances


def _observed(fn):
    with obs.collecting() as reg:
        out = fn()
    return out, obs.metrics_dict(reg)


def _firings(sim):
    return {pos: dict(pe.firings) for pos, pe in sim.pes.items()}


def _assert_all_match(runs, label):
    """``runs[backend] = (sim_result, snapshot, metrics, firings)``."""
    ref = runs["pointwise"]
    for backend in ("wavefront", "compiled"):
        got = runs[backend]
        where = f"{label}: pointwise vs {backend}"
        assert ref[0] == got[0], f"{where}: SimulationResult diverged"
        assert ref[1] == got[1], f"{where}: store contents diverged"
        assert ref[2]["counters"] == got[2]["counters"], (
            f"{where}: counters diverged"
        )
        assert ref[2]["gauges"] == got[2]["gauges"], f"{where}: gauges diverged"
        assert ref[3] == got[3], f"{where}: PE firing records diverged"


# ---------------------------------------------------------------------------
# Bit-level matmul machine: designs x expansions, three backends
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("design", ["fig4", "fig5"])
@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bitlevel_three_backend_equivalence(design, expansion, capture, rng):
    u = p = 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    mapping = (
        designs.fig5_mapping(p) if design == "fig5" else designs.fig4_mapping(p)
    )
    runs = {}
    products = {}
    states = {}
    for backend in BACKENDS:
        machine = BitLevelMatmulMachine(u, p, mapping, expansion, backend=backend)
        out, metrics = _observed(lambda: machine.run(x, y))
        sim = capture[-1]
        runs[backend] = (out.sim, sim.store.snapshot(), metrics, _firings(sim))
        products[backend] = out.product
        states[backend] = (out.dropped_bits, out.max_summands)
    mask = (1 << (2 * p - 1)) - 1
    assert products["pointwise"] == products["wavefront"] == products["compiled"]
    assert products["compiled"] == reference_matmul(x, y, mask)
    assert states["pointwise"] == states["wavefront"] == states["compiled"]
    _assert_all_match(runs, f"bitlevel {design}/exp {expansion}")


@pytest.mark.parametrize("size", [(2, 4), (4, 2), (3, 4)])
def test_bitlevel_rectangular_sizes(size, capture, rng):
    u, p = size
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    runs = {}
    for backend in BACKENDS:
        machine = BitLevelMatmulMachine(
            u, p, designs.fig4_mapping(p), "II", backend=backend
        )
        out, metrics = _observed(lambda: machine.run(x, y))
        sim = capture[-1]
        runs[backend] = (out.sim, sim.store.snapshot(), metrics, _firings(sim))
        assert out.product == reference_matmul(x, y, (1 << (2 * p - 1)) - 1)
    _assert_all_match(runs, f"bitlevel u={u} p={p}")


def test_compiled_kernel_and_shim_agree(rng):
    """NumPy gated off: the compiled backend's generic fallback must
    produce the same run as the compiled kernel path."""
    u = p = 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)

    def run_once():
        machine = BitLevelMatmulMachine(
            u, p, designs.fig4_mapping(p), "II", backend="compiled"
        )
        return _observed(lambda: machine.run(x, y))

    out_kernel, m_kernel = run_once()
    have_numpy, wavefront_mod.HAVE_NUMPY = wavefront_mod.HAVE_NUMPY, False
    try:
        out_shim, m_shim = run_once()
    finally:
        wavefront_mod.HAVE_NUMPY = have_numpy
    assert out_kernel.product == out_shim.product
    assert out_kernel.sim == out_shim.sim
    assert m_kernel["counters"] == m_shim["counters"]
    assert m_kernel["gauges"] == m_shim["gauges"]


# ---------------------------------------------------------------------------
# Every registered arithmetic structure
# ---------------------------------------------------------------------------

def _run_addshift(backend, rng):
    u, p = 3, 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    machine = BitLevelMatmulMachine(
        u, p, designs.fig4_mapping(p), "II", backend=backend
    )
    out, metrics = _observed(lambda: machine.run(x, y))
    return (out.product, out.sim), metrics


def _run_carrysave(backend, rng):
    u, p = 4, 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    machine = WordLevelMatmulMachine(u, p, "carry-save", backend=backend)
    out, metrics = _observed(lambda: machine.run(x, y))
    assert out.product == reference_matmul(x, y)
    return (out.product, out.total_cycles, out.sim), metrics


def _run_baughwooley(backend, rng):
    u, p = 2, 4
    half = 1 << (p - 1)
    x = [[rng.randint(-half, half - 1) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(half // u) for _ in range(u)] for _ in range(u)]
    machine = BitLevelMatmulMachine(
        u, p, designs.fig4_mapping(p), "II", backend=backend
    )
    modulus = 1 << (2 * p - 1)
    out, metrics = _observed(
        lambda: signed_matmul(
            lambda a, b: machine.run(a, b).product, x, y, modulus
        )
    )
    bw = BaughWooleyMultiplier(p)
    ref = [
        [sum(bw.multiply(x[i][k], y[k][j]) for k in range(u)) for j in range(u)]
        for i in range(u)
    ]
    assert out == ref
    return out, metrics


_ARITH_RUNNERS = {
    "add-shift": _run_addshift,
    "carry-save": _run_carrysave,
    "baugh-wooley": _run_baughwooley,
}


@pytest.mark.parametrize("arith", list_structures())
def test_registered_arithmetic_compiled_equivalence(arith):
    runner = _ARITH_RUNNERS.get(arith)
    if runner is None:
        pytest.fail(
            f"arithmetic structure {arith!r} has no backend-equivalence "
            f"runner; extend _ARITH_RUNNERS"
        )
    results = {
        backend: runner(backend, random.Random(0xC0))
        for backend in BACKENDS
    }
    out_pw, m_pw = results["pointwise"]
    for backend in ("wavefront", "compiled"):
        out_b, m_b = results[backend]
        assert out_pw == out_b, f"{arith}: results diverged ({backend})"
        assert m_pw["counters"] == m_b["counters"], (
            f"{arith}: counters diverged ({backend})"
        )
        assert m_pw["gauges"] == m_b["gauges"], (
            f"{arith}: gauges diverged ({backend})"
        )


# ---------------------------------------------------------------------------
# Generic model-(3.5) machine and random mappings (compiled fallback path)
# ---------------------------------------------------------------------------

CONV_T = MappingMatrix([[3, 0, 1, 0], [0, 0, 0, 1], [2, 1, 2, 1]], "T-conv")


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_model_machine_compiled_equivalence(expansion, rng):
    n_pts, taps, p = 4, 3, 3
    w = [rng.randrange(1 << p) for _ in range(taps)]
    sig = [rng.randrange(1 << p) for _ in range(n_pts + taps - 1)]
    xw, yw = {}, {}
    for j1 in range(1, n_pts + 1):
        for j2 in range(1, taps + 1):
            xw[(j1, j2)] = w[j2 - 1]
            yw[(j1, j2)] = sig[j1 + j2 - 2]
    runs = {}
    outputs = {}
    for backend in BACKENDS:
        machine = BitLevelModelMachine(
            [1, 0], [1, -1], [0, 1], [1, 1], [n_pts, taps], p, CONV_T,
            expansion, backend=backend,
        )
        out, metrics = _observed(lambda: machine.run(xw, yw))
        runs[backend] = (out.sim, metrics)
        outputs[backend] = (out.z_words, out.outputs, out.dropped_bits)
        assert out.outputs == machine.reference(xw, yw)
    for backend in ("wavefront", "compiled"):
        assert outputs["pointwise"] == outputs[backend]
        assert runs["pointwise"][0] == runs[backend][0]
        assert (runs["pointwise"][1]["counters"]
                == runs[backend][1]["counters"])
        assert runs["pointwise"][1]["gauges"] == runs[backend][1]["gauges"]


N_RANDOM_MAPPINGS = 20


def _feasible_cases(seed, count, max_attempts=400):
    rng = random.Random(seed)
    out = []
    for _ in range(max_attempts):
        if len(out) >= count:
            break
        case = gen_mapping_case(rng)
        try:
            alg, binding, t, prims = case.build()
            rep = check_feasibility(t, alg, binding, prims)
        except Exception:
            continue
        if rep.feasible:
            out.append((case, alg, binding, t))
    return out


def _generic_compute(alg, binding):
    deps = list(alg.dependences)

    def compute(q, store):
        total = sum((i + 1) * v for i, v in enumerate(q)) % 17
        written = []
        for k, dep in enumerate(deps):
            causes = dep.causes or (f"d{k}",)
            for var in causes:
                if var not in written:
                    written.append(var)
            if not dep.valid_at(q, binding):
                continue
            src = tuple(a - b for a, b in zip(q, dep.vector))
            for var in causes:
                total += store.get(var, src, 0)
        for var in written:
            store.put(var, q, total % 251)

    return compute


def test_random_feasible_mappings_three_backends():
    cases = _feasible_cases(seed=42, count=N_RANDOM_MAPPINGS)
    assert len(cases) >= N_RANDOM_MAPPINGS, (
        f"generator produced only {len(cases)} feasible mappings; "
        f"loosen the draw budget"
    )
    for case, alg, binding, t in cases:
        runs = {}
        for backend in BACKENDS:
            compute = _generic_compute(alg, binding)
            with obs.collecting() as reg:
                sim = SpaceTimeSimulator(t, alg, binding, backend=backend)
                result = sim.run(compute)
            runs[backend] = (
                result,
                sim.store.snapshot(),
                obs.metrics_dict(reg),
                _firings(sim),
            )
        _assert_all_match(runs, f"{case.kind} mapping {t.rows}")


# ---------------------------------------------------------------------------
# Plan memoization (the wavefront repeated-run fix)
# ---------------------------------------------------------------------------

def test_schedule_plan_is_memoized_across_runs():
    """Repeat simulations of the same design reuse one SchedulePlan (the
    per-run argsort/grouping work is paid once per design)."""
    p = 3
    mapping = designs.fig4_mapping(p)
    lowers = (1, 1, 1, 1, 1)
    uppers = (3, 3, 3, p, p)
    clear_plan_memo()
    first = plan_for(mapping, lowers, uppers)
    again = plan_for(mapping, lowers, uppers)
    assert first is again
    # Distinct bounds get a distinct plan.
    other = plan_for(mapping, lowers, (2, 2, 2, p, p))
    assert other is not first


def test_wavefront_and_compiled_share_plan_memo(rng):
    """Back-to-back wavefront then compiled runs of one design hit the
    same memoized plan entry rather than regrouping the lattice."""
    import repro.compile.plan as plan_mod

    u = p = 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    mapping = designs.fig4_mapping(p)
    clear_plan_memo()
    calls = []
    real_build = plan_mod._build_plan

    def counting_build(mapping_, lowers, uppers):
        calls.append((mapping_.rows, lowers, uppers))
        return real_build(mapping_, lowers, uppers)

    plan_mod._build_plan, saved = counting_build, real_build
    try:
        for backend in ("wavefront", "compiled", "wavefront", "compiled"):
            BitLevelMatmulMachine(
                u, p, mapping, "II", backend=backend
            ).run(x, y)
    finally:
        plan_mod._build_plan = saved
    assert len(calls) == 1, f"plan rebuilt {len(calls)} times for one design"


def test_plan_memo_failures_not_cached():
    """Conflicting mappings raise on every call (errors never memoize)."""
    bad = MappingMatrix(
        [[1, 1, 1, 1, 1], [0, 0, 0, 0, 0], [0, 0, 0, 0, 0]], "T-conflict"
    )
    clear_plan_memo()
    for _ in range(2):
        with pytest.raises(ValueError, match="conflict"):
            plan_for(bad, (1, 1, 1, 1, 1), (2, 2, 2, 2, 2))


# ---------------------------------------------------------------------------
# Kernel artifact cache: cold/warm round trip and selective clearing
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not wavefront_mod.HAVE_NUMPY, reason="needs numpy")
def test_kernel_cache_round_trip(tmp_path, monkeypatch, rng):
    from repro.cache.store import ArtifactCache

    u = p = 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    mapping = designs.fig4_mapping(p)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

    def run_once():
        machine = BitLevelMatmulMachine(
            u, p, mapping, "II", backend="compiled"
        )
        return _observed(lambda: machine.run(x, y))

    clear_program_memo()
    out_cold, m_cold = run_once()
    assert m_cold["counters"].get("cache.kernel_misses") == 1

    # Drop the in-process memo: the warm run must load the payload from
    # disk and still be byte-identical.
    clear_program_memo()
    out_warm, m_warm = run_once()
    assert m_warm["counters"].get("cache.kernel_hits") == 1
    assert "cache.kernel_misses" not in m_warm["counters"]
    assert out_warm.product == out_cold.product
    assert out_warm.sim == out_cold.sim
    assert out_warm.dropped_bits == out_cold.dropped_bits
    assert out_warm.max_summands == out_cold.max_summands

    cache = ArtifactCache(str(tmp_path))
    st = cache.stats()
    assert st["kinds"].get("kernel", 0) >= 1

    # Selective clearing: only the kernel subtree goes away.
    cache.put("analysis", "deadbeef" * 8, {"keep": True})
    removed = cache.clear(kind="kernel")
    assert removed >= 1
    st = cache.stats()
    assert "kernel" not in st["kinds"]
    assert st["kinds"].get("analysis", 0) == 1


@pytest.mark.skipif(not wavefront_mod.HAVE_NUMPY, reason="needs numpy")
def test_corrupt_kernel_payload_recompiles(tmp_path, monkeypatch, rng):
    """A stale/corrupt cached payload falls back to a fresh compile."""
    from repro.cache.keys import kernel_key
    from repro.cache.store import ArtifactCache
    from repro.compile.matmul import KERNEL_PAYLOAD_VERSION

    u = p = 2
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    mapping = designs.fig4_mapping(p)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    key = kernel_key(
        "matmul", mapping.rows,
        {"u": u, "p": p, "expansion": "II"}, KERNEL_PAYLOAD_VERSION,
    )
    ArtifactCache(str(tmp_path)).put("kernel", key, {"family": "garbage"})
    clear_program_memo()
    machine = BitLevelMatmulMachine(u, p, mapping, "II", backend="compiled")
    out = machine.run(x, y)
    assert out.product == reference_matmul(x, y, (1 << (2 * p - 1)) - 1)


# ---------------------------------------------------------------------------
# Serve path
# ---------------------------------------------------------------------------

def test_serve_simulate_compiled_backend():
    from repro.serve.dispatch import run_job
    from repro.serve.jobs import JobSpec

    result = run_job(JobSpec(kind="simulate", u=2, p=2, sim_backend="compiled"))
    assert result.ok
    assert result.data["correct"] is True
    assert result.data["backend"] == "compiled"
