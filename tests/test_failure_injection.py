"""Failure injection: every dynamic/static checker must catch its fault.

A verifier that never fires is worthless; these tests corrupt structures,
mappings and machines on purpose and assert the corresponding guard trips.
"""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.expansion.verify import effective_edges
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.simulator import SpaceTimeSimulator, ValueStore
from repro.mapping import check_feasibility, designs
from repro.mapping.interconnect import InterconnectSolution, solve_interconnect
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.conditions import Eq, Ne, TRUE
from repro.structures.dependence import DependenceVector


class TestStructureCorruption:
    """A wrong Theorem 3.1 output must not survive cross-validation."""

    def _edges(self, alg):
        return effective_edges(alg, {"u": 2, "p": 2})

    def test_wrong_validity_detected(self):
        good = matmul_bit_level(2, 2, "II")
        # Corrupt d̄₆'s validity from TRUE to a restricted region.
        bad_vectors = [
            v.with_validity(Eq(0, 1)) if v.vector == (0, 0, 0, 1, -1) else v
            for v in good.dependences
        ]
        bad = Algorithm(good.index_set, bad_vectors, name="corrupted")
        assert self._edges(good) != self._edges(bad)

    def test_missing_vector_detected(self):
        good = matmul_bit_level(2, 2, "II")
        bad = Algorithm(
            good.index_set,
            [v for v in good.dependences if v.vector != (0, 0, 0, 0, 1)],
            name="corrupted",
        )
        assert self._edges(good) != self._edges(bad)

    def test_wrong_expansion_detected(self):
        # D_I and D_II differ extensionally (d̄₃/d̄₆ regions swap).
        e1 = effective_edges(matmul_bit_level(2, 2, "I"), {"u": 2, "p": 2})
        e2 = effective_edges(matmul_bit_level(2, 2, "II"), {"u": 2, "p": 2})
        assert e1 != e2


class TestMappingCorruption:
    def test_schedule_violation_caught_statically(self):
        alg = matmul_bit_level(2, 2, "II")
        bad = MappingMatrix(
            [[2, 0, 0, 1, 0], [0, 2, 0, 0, 1], [1, 1, -1, 2, 1]]
        )
        rep = check_feasibility(bad, alg, {"u": 2, "p": 2})
        assert not rep.schedule_valid

    def test_schedule_violation_caught_at_runtime(self):
        # Π d̄₃ = -1: the z word of the *next* iteration would be read
        # before it exists; the causality check in the store must fire.
        bad = MappingMatrix(
            [[2, 0, 0, 1, 0], [0, 2, 0, 0, 1], [1, 1, -1, 2, 1]]
        )
        machine = BitLevelMatmulMachine(2, 2, bad, "II")
        with pytest.raises((AssertionError, KeyError)):
            machine.run([[1, 1], [1, 1]], [[1, 1], [1, 1]])

    def test_conflict_caught_at_runtime(self):
        # Degenerate space map: many points share PE and time.
        bad = MappingMatrix(
            [[1, 0, 0, 0, 0], [0, 1, 0, 0, 0], [1, 1, 1, 2, 1]]
        )
        machine = BitLevelMatmulMachine(2, 2, bad, "II")
        with pytest.raises(ValueError, match="conflict"):
            machine.run([[1, 1], [1, 1]], [[1, 1], [1, 1]])

    def test_conflict_caught_statically(self):
        alg = matmul_bit_level(2, 2, "II")
        bad = MappingMatrix(
            [[1, 0, 0, 0, 0], [0, 1, 0, 0, 0], [1, 1, 1, 2, 1]]
        )
        rep = check_feasibility(bad, alg, {"u": 2, "p": 2})
        assert not rep.conflict_free


class TestInterconnectCorruption:
    def test_forged_k_rejected(self):
        alg = matmul_bit_level(3, 3, "II")
        t = designs.fig4_mapping(3)
        d_cols = alg.dependences.columns()
        d = [[c[r] for c in d_cols] for r in range(5)]
        sol = solve_interconnect(t.space, d, t.schedule, designs.fig4_primitives(3))
        assert sol is not None and sol.verify(t.space, d)
        # Corrupt one K entry: verification must fail.
        bad_k = [list(row) for row in sol.k_matrix]
        bad_k[0][0] += 1
        forged = InterconnectSolution(
            p_matrix=sol.p_matrix,
            k_matrix=bad_k,
            hops=sol.hops,
            deadlines=sol.deadlines,
            buffers=sol.buffers,
        )
        assert not forged.verify(t.space, d)

    def test_deadline_forgery_rejected(self):
        alg = matmul_bit_level(3, 3, "II")
        t = designs.fig4_mapping(3)
        d_cols = alg.dependences.columns()
        d = [[c[r] for c in d_cols] for r in range(5)]
        sol = solve_interconnect(t.space, d, t.schedule, designs.fig4_primitives(3))
        forged = InterconnectSolution(
            p_matrix=sol.p_matrix,
            k_matrix=sol.k_matrix,
            hops=[h + 10 for h in sol.hops],
            deadlines=sol.deadlines,
            buffers=sol.buffers,
        )
        assert not forged.verify(t.space, d)


class TestStoreGuards:
    def test_double_write(self):
        store = ValueStore(designs.word_level_mapping())
        store.put("v", (1, 1, 1), 0)
        with pytest.raises(AssertionError, match="double write"):
            store.put("v", (1, 1, 1), 1)

    def test_simulation_detects_same_time_read(self):
        # Producing and consuming at the same beat violates causality.
        from repro.ir.builders import matmul_word_structure

        alg = matmul_word_structure()
        mapping = designs.word_level_mapping()
        sim = SpaceTimeSimulator(mapping, alg, {"u": 2})

        def compute(q, store):
            store.put("w", q, 1)
            store.get("w", q)  # same point, same time: must trip

        with pytest.raises(AssertionError, match="causality"):
            sim.run(compute)


class TestArithmeticGuards:
    def test_compressor_overflow_guard(self):
        from repro.expansion.semantics import LatticeSweep

        sweep = LatticeSweep(1)
        for _ in range(8):
            sweep.seed((1, 1), 1)
        with pytest.raises(AssertionError, match="overflow"):
            sweep.run()

    def test_machine_rejects_oversized_operand(self):
        machine = BitLevelMatmulMachine(2, 2, designs.fig4_mapping(2), "II")
        with pytest.raises(ValueError):
            machine.run([[4, 0], [0, 0]], [[1, 1], [1, 1]])
