"""Property-based tests for :mod:`repro.util.intmath`,
:mod:`repro.util.linalg` and :mod:`repro.depanalysis.diophantine`.

These modules underpin every exactness claim in the repository (the GCD
dependence test, lattice enumeration, rank/coprimality feasibility
conditions), so they are tested against their algebraic contracts on
random inputs drawn from the shared :mod:`repro.verify.generator`
strategies: Bézout identities, divisibility laws, full round-trips of
the Hermite/Smith transform matrices and integer system solutions, and
brute-force cross-checks of bounded lattice enumeration (including
zero-coefficient rows, negative strides, and GCD-unsatisfiable systems).
"""

import itertools
from math import gcd

from hypothesis import given, settings, strategies as st

from repro.depanalysis.diophantine import (
    UnboundedLatticeError,
    bounded_lattice_points,
    lattice_intervals,
    reduce_basis,
)
from repro.util.intmath import (
    ceil_div,
    egcd,
    floor_div,
    gcd_list,
    lcm_list,
    solve_linear_diophantine_eq,
)
from repro.util.linalg import (
    hermite_normal_form,
    integer_nullspace,
    integer_rank,
    is_unimodular,
    mat_mul,
    mat_vec,
    smith_normal_form,
    solve_integer_system,
)
from repro.verify.generator import int_matrix_strategy, int_vector_strategy

ints = st.integers(-50, 50)


# ---------------------------------------------------------------------------
# intmath
# ---------------------------------------------------------------------------

@given(ints, ints)
def test_egcd_bezout_identity(a, b):
    g, x, y = egcd(a, b)
    assert g == gcd(a, b)
    assert a * x + b * y == g


@given(int_vector_strategy())
def test_gcd_list_divides_every_entry(vec):
    g = gcd_list(vec)
    assert g >= 0
    if any(vec):
        assert g > 0
        assert all(v % g == 0 for v in vec)
    else:
        assert g == 0


@given(int_vector_strategy(bound=4))
def test_lcm_list_is_a_common_multiple(vec):
    nonzero = [v for v in vec if v]
    if not nonzero:
        assert lcm_list(vec) == 0
        return
    m = lcm_list(nonzero)
    assert m > 0
    assert all(m % v == 0 for v in nonzero)
    # Minimality: no proper divisor of m is a common multiple.
    assert all(
        any(d % v != 0 for v in nonzero)
        for d in range(1, m)
        if m % d == 0
    )


@given(ints, st.integers(-8, 8).filter(bool))
def test_floor_ceil_div_bracket_the_quotient(a, b):
    lo, hi = floor_div(a, b), ceil_div(a, b)
    assert lo * b <= a if b > 0 else lo * b >= a
    assert lo <= a / b <= hi
    assert hi - lo in (0, 1)


@given(int_vector_strategy(), st.integers(-30, 30))
def test_diophantine_solution_round_trip(coeffs, rhs):
    solved = solve_linear_diophantine_eq(coeffs, rhs)
    g = gcd_list(coeffs)
    if solved is None:
        # Exactly the GCD test: solvable iff gcd | rhs.
        assert g == 0 and rhs != 0 or g != 0 and rhs % g != 0
        return
    particular, basis = solved
    assert sum(c * x for c, x in zip(coeffs, particular)) == rhs
    for vec in basis:
        assert sum(c * x for c, x in zip(coeffs, vec)) == 0
    # Shifting the particular by any basis vector stays a solution.
    shifted = [x + v for x, v in zip(particular, basis[0])] if basis else particular
    assert sum(c * x for c, x in zip(coeffs, shifted)) == rhs


# ---------------------------------------------------------------------------
# linalg
# ---------------------------------------------------------------------------

@settings(deadline=None)
@given(int_matrix_strategy())
def test_hermite_round_trip(a):
    h, u = hermite_normal_form(a)
    assert is_unimodular(u)
    assert mat_mul(u, a) == h
    # Echelon shape: pivot columns strictly increase; pivots positive.
    last = -1
    for row in h:
        piv = next((j for j, x in enumerate(row) if x), None)
        if piv is None:
            continue
        assert piv > last
        assert row[piv] > 0
        last = piv


@settings(deadline=None)
@given(int_matrix_strategy())
def test_smith_round_trip_and_divisibility(a):
    d, u, v = smith_normal_form(a)
    assert is_unimodular(u) and is_unimodular(v)
    assert mat_mul(mat_mul(u, a), v) == d
    m, n = len(d), len(d[0])
    diag = [d[i][i] for i in range(min(m, n))]
    assert all(
        d[i][j] == 0 for i in range(m) for j in range(n) if i != j
    )
    assert all(x >= 0 for x in diag)
    for first, second in zip(diag, diag[1:]):
        if first:
            assert second % first == 0
        else:
            assert second == 0


@settings(deadline=None)
@given(int_matrix_strategy())
def test_nullspace_vectors_annihilate(a):
    basis = integer_nullspace(a)
    n = len(a[0])
    assert len(basis) == n - integer_rank(a)
    for vec in basis:
        assert mat_vec(a, vec) == [0] * len(a)
        assert any(vec)


@settings(deadline=None)
@given(int_matrix_strategy(max_dim=3, bound=4), st.data())
def test_solve_integer_system_round_trip(a, data):
    b = data.draw(
        st.lists(
            st.integers(-20, 20), min_size=len(a), max_size=len(a)
        )
    )
    solved = solve_integer_system(a, b)
    if solved is None:
        return
    particular, basis = solved
    assert mat_vec(a, particular) == b
    for vec in basis:
        assert mat_vec(a, vec) == [0] * len(a)


@settings(deadline=None)
@given(int_matrix_strategy(max_dim=3, bound=4))
def test_solvable_when_rhs_in_image(a):
    # Construct b = A x for a known x: a solution must then be found.
    x = list(range(1, len(a[0]) + 1))
    b = mat_vec(a, x)
    solved = solve_integer_system(a, b)
    assert solved is not None
    particular, _ = solved
    assert mat_vec(a, particular) == b


# ---------------------------------------------------------------------------
# depanalysis.diophantine: bounded lattice enumeration edge cases
# ---------------------------------------------------------------------------

def _brute_force_lattice(particular, basis, bounds, intervals):
    """All in-box points reachable with t̄ confined to ``intervals``."""
    points = set()
    for t in itertools.product(
        *[range(lo, hi + 1) for lo, hi in intervals]
    ):
        x = [
            p + sum(b[i] * tk for b, tk in zip(basis, t))
            for i, p in enumerate(particular)
        ]
        if all(lo <= xi <= hi for xi, (lo, hi) in zip(x, bounds)):
            points.add(tuple(x))
    return points


@given(int_vector_strategy(), st.integers(-30, 30))
def test_gcd_unsatisfiable_equation_has_no_solution(coeffs, rhs):
    # The GCD screen is exact: if g = gcd(coeffs) does not divide rhs the
    # equation is unsatisfiable, and the solver must report that (rather
    # than, say, a rounded-off "solution").
    g = gcd_list(coeffs)
    if g > 1:
        rhs = rhs * g + 1  # force g ∤ rhs
        assert solve_linear_diophantine_eq(coeffs, rhs) is None
    elif g == 1:
        assert solve_linear_diophantine_eq(coeffs, rhs) is not None


@given(
    st.lists(st.integers(-4, 4), min_size=2, max_size=4),
    st.data(),
)
def test_zero_coefficient_rows_gate_on_fixed_coordinate(particular, data):
    # A coordinate every basis vector is zero on is *fixed* at its
    # particular value; feasibility of the whole lattice hinges on whether
    # that fixed value sits inside the box.
    n = len(particular)
    basis = [[0] * n]
    basis[0][-1] = data.draw(st.integers(1, 3))  # only the last axis moves
    bounds = [
        (data.draw(st.integers(-4, 0)), data.draw(st.integers(0, 4)))
        for _ in range(n)
    ]
    fixed_ok = all(
        lo <= particular[i] <= hi
        for i, (lo, hi) in enumerate(bounds[:-1])
    )
    points = list(bounded_lattice_points(particular, basis, bounds))
    intervals = lattice_intervals(particular, basis, bounds)
    if not fixed_ok:
        assert points == []
        assert intervals is None
    for x in points:
        assert x[:-1] == particular[:-1]  # zero-coefficient rows are frozen


def test_lattice_intervals_empty_basis():
    assert lattice_intervals([1, 2], [], [(0, 3), (0, 3)]) == []


def test_negative_stride_single_direction():
    # Stride -2 on one axis: x = 5 - 2t inside [0, 5] gives {5, 3, 1}.
    points = sorted(
        tuple(x) for x in bounded_lattice_points([5], [[-2]], [(0, 5)])
    )
    assert points == [(1,), (3,), (5,)]
    (interval,) = lattice_intervals([5], [[-2]], [(0, 5)])
    assert interval[0] <= 0 <= interval[1]
    assert interval[0] <= 2 <= interval[1]


@settings(deadline=None, max_examples=60)
@given(st.integers(1, 3), st.data())
def test_lattice_enumeration_matches_brute_force(n, data):
    # Soundness + completeness on random lattices, explicitly including
    # negative strides (basis entries drawn from [-2, 2]): the enumerated
    # set equals a brute-force scan of the interval box, and every
    # enumerated point's t̄ lies inside lattice_intervals' bounds.
    particular = data.draw(
        st.lists(st.integers(-3, 3), min_size=n, max_size=n)
    )
    k = data.draw(st.integers(1, n))
    basis = data.draw(
        st.lists(
            st.lists(st.integers(-2, 2), min_size=n, max_size=n).filter(any),
            min_size=k,
            max_size=k,
        )
    )
    bounds = []
    for _ in range(n):
        lo = data.draw(st.integers(-3, 1))
        bounds.append((lo, lo + data.draw(st.integers(0, 4))))
    try:
        points = [
            tuple(x) for x in bounded_lattice_points(particular, basis, bounds)
        ]
        intervals = lattice_intervals(particular, basis, bounds)
    except UnboundedLatticeError:
        return  # rank-deficient basis: legitimately unbounded, out of scope
    if intervals is None:
        assert points == []
        return
    volume = 1
    for lo, hi in intervals:
        volume *= max(0, hi - lo + 1)
    if volume > 20_000:  # near-degenerate basis: skip the exhaustive scan
        return
    # lattice_intervals' bounds correspond to the reduced basis
    # directions (rank-deficient generator sets are HNF-reduced first).
    expected = _brute_force_lattice(
        particular, reduce_basis(basis), bounds, intervals
    )
    assert set(points) == expected
    assert len(points) == len(set(points))  # each solution yielded once
