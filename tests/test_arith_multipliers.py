"""Tests for the add-shift and carry-save lattice multipliers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.addshift import AddShiftMultiplier, addshift_structure
from repro.arith.carrysave import CarrySaveMultiplier, carrysave_structure
from repro.structures.params import S


class TestAddShiftFunctional:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_exhaustive(self, p):
        m = AddShiftMultiplier(p)
        for a in range(1 << p):
            for b in range(1 << p):
                assert m.multiply(a, b) == a * b

    @given(st.integers(5, 12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_sampled_large(self, p, data):
        a = data.draw(st.integers(0, (1 << p) - 1))
        b = data.draw(st.integers(0, (1 << p) - 1))
        assert AddShiftMultiplier(p).multiply(a, b) == a * b

    def test_result_bits_width(self):
        bits = AddShiftMultiplier(3).result_bits(7, 7)
        assert len(bits) == 6  # 2p bits including the final carry

    def test_paper_output_map(self):
        # s_i = s(i,1) for i <= p; s(p, i-p+1) for p < i <= 2p-1.
        p = 3
        m = AddShiftMultiplier(p)
        t = m.trace(5, 3)
        bits = m.result_bits(5, 3)
        assert bits[0] == t["s"][(1, 1)]
        assert bits[2] == t["s"][(3, 1)]
        assert bits[3] == t["s"][(3, 2)]
        assert bits[4] == t["s"][(3, 3)]

    def test_boundary_reroute_needed(self):
        # 7 x 7 at p = 3 loses the weight-16 carry without the completion.
        m = AddShiftMultiplier(3)
        t = m.trace(7, 7)
        assert any(t["rerouted"].values())
        assert m.multiply(7, 7) == 49

    def test_carry_out_is_top_bit(self):
        m = AddShiftMultiplier(2)
        t = m.trace(3, 3)  # 9 = 1001b
        assert t["carry_out"] == 1

    def test_steps(self):
        assert AddShiftMultiplier(4).steps == 16

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            AddShiftMultiplier(0)

    def test_operand_too_wide(self):
        with pytest.raises(ValueError):
            AddShiftMultiplier(2).multiply(4, 1)


class TestCarrySaveFunctional:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_exhaustive(self, p):
        m = CarrySaveMultiplier(p)
        for a in range(1 << p):
            for b in range(1 << p):
                assert m.multiply(a, b) == a * b

    @given(st.integers(5, 12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_sampled_large(self, p, data):
        a = data.draw(st.integers(0, (1 << p) - 1))
        b = data.draw(st.integers(0, (1 << p) - 1))
        assert CarrySaveMultiplier(p).multiply(a, b) == a * b

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            CarrySaveMultiplier(0)

    def test_steps(self):
        assert CarrySaveMultiplier(3).steps == 9


class TestStructures:
    def test_addshift_structure_34(self):
        s = addshift_structure()
        assert s.delta_a == (1, 0)
        assert s.delta_b == (0, 1)
        assert s.delta_carry == (0, 1)
        assert s.delta_s == (1, -1)
        assert s.delta_carry2 == (0, 2)
        assert s.index_set.bounds({"p": 4}) == [(1, 4), (1, 4)]

    def test_addshift_matrix_merges_b_and_c(self):
        mat = addshift_structure().dependence_matrix()
        by_vec = {v.vector: set(v.causes) for v in mat}
        assert by_vec == {
            (1, 0): {"a"},
            (0, 1): {"b", "c"},
            (1, -1): {"s"},
        }

    def test_carrysave_matrix_merges_a_and_c(self):
        mat = carrysave_structure().dependence_matrix()
        by_vec = {v.vector: set(v.causes) for v in mat}
        assert by_vec == {
            (1, 0): {"a", "c"},
            (0, 1): {"b"},
            (1, -1): {"s"},
        }

    def test_distinct_vectors(self):
        assert addshift_structure().distinct_vectors() == [
            (0, 1), (1, -1), (1, 0)
        ]

    def test_concrete_p(self):
        s = addshift_structure(5)
        assert s.index_set.size({}) == 25

    def test_executable_semantics(self):
        s = addshift_structure()
        assert s.multiply(6, 7, 4) == 42
        cs = carrysave_structure()
        assert cs.multiply(6, 7, 4) == 42

    def test_symbolic_upper_bound(self):
        s = addshift_structure()
        assert s.index_set.uppers[0] == S("p")
