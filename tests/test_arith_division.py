"""Tests for the non-restoring divider."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.division import NonRestoringDivider, division_row_structure
from repro.mapping.schedule import execution_time, find_optimal_schedule


class TestFunctional:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_exhaustive(self, p):
        d = NonRestoringDivider(p)
        for a in range(1 << p):
            for b in range(1, 1 << p):
                assert d.divide(a, b) == (a // b, a % b)

    @given(st.integers(5, 12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_sampled_large(self, p, data):
        a = data.draw(st.integers(0, (1 << p) - 1))
        b = data.draw(st.integers(1, (1 << p) - 1))
        assert NonRestoringDivider(p).divide(a, b) == (a // b, a % b)

    def test_zero_divisor_rejected(self):
        with pytest.raises(ValueError):
            NonRestoringDivider(3).divide(5, 0)

    def test_dividend_range_checked(self):
        with pytest.raises(ValueError):
            NonRestoringDivider(3).divide(8, 1)

    def test_trace_rows(self):
        t = NonRestoringDivider(3).trace(7, 2)
        assert len(t["rows"]) == 3
        assert t["quotient"] == 3 and t["remainder"] == 1
        assert t["rows"][0]["control"] == 1  # first row subtracts

    def test_correction_happens(self):
        # 1 / 3 at p = 2: the last partial remainder is negative.
        t = NonRestoringDivider(2).trace(1, 3)
        assert t["corrected"]
        assert (t["quotient"], t["remainder"]) == (0, 1)

    def test_steps_quadratic(self):
        assert NonRestoringDivider(4).steps == 4 * 6 + 6
        assert NonRestoringDivider(8).cycles == 8 * 10 + 10


class TestRowStructure:
    def test_shape(self):
        alg = division_row_structure(5)
        assert alg.dim == 1
        assert alg.is_uniform
        assert [v.vector for v in alg.dependences] == [(1,)]
        assert set(alg.dependences[0].causes) == {"R", "T", "b"}

    def test_schedulable(self):
        # The row-level chain is linearly schedulable (unlike the
        # cell-level array; see the module docstring).
        alg = division_row_structure(6)
        best = find_optimal_schedule(alg, {"p": 6}, coeff_bound=1)
        assert best is not None
        assert best[1] == 6  # one row per beat

    def test_symbolic_bounds(self):
        alg = division_row_structure()
        assert "p" in alg.index_set.params()
