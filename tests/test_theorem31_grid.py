"""Broad cross-validation grid for Theorem 3.1.

One test per (model, word length, expansion) combination, each comparing
the compositional structure against general dependence analysis of the
explicitly expanded program.  This grid is the repository's strongest
single piece of evidence that the paper's central theorem holds.
"""

import pytest

from repro.expansion.verify import verify_theorem31

# (name, h1, h2, h3, lowers, uppers)
MODELS = [
    ("1d-unit", [1], [1], [1], [1], [4]),
    ("1d-stride2", [2], [1], [1], [1], [5]),
    ("1d-mixed", [1], [2], [3], [1], [7]),
    ("matmul", [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [2, 2, 2]),
    ("convolution", [1, 0], [1, -1], [0, 1], [1, 1], [3, 3]),
    ("matvec", [0, 1], [1, 0], [0, 1], [1, 1], [3, 3]),
    ("2d-diagonal", [1, 1], [0, 1], [0, 1], [1, 1], [3, 4]),
    ("offset-box", [1], [1], [1], [2], [5]),
]

P_VALUES = [2, 3]
EXPANSIONS = ["I", "II"]


@pytest.mark.parametrize("expansion", EXPANSIONS)
@pytest.mark.parametrize("p", P_VALUES)
@pytest.mark.parametrize(
    "name,h1,h2,h3,lowers,uppers", MODELS, ids=[m[0] for m in MODELS]
)
def test_theorem31_holds(name, h1, h2, h3, lowers, uppers, p, expansion):
    rep = verify_theorem31(h1, h2, h3, lowers, uppers, p, expansion)
    assert rep.matches, (
        f"{name} p={p} exp={expansion}: {rep.summary()}\n"
        f"missing: {rep.missing_from_analysis[:5]}\n"
        f"extra:   {rep.extra_in_analysis[:5]}"
    )


@pytest.mark.parametrize("expansion", EXPANSIONS)
def test_exact_backend_agrees_on_one_case(expansion):
    rep = verify_theorem31([1], [1], [1], [1], [3], 2, expansion, method="exact")
    assert rep.matches
