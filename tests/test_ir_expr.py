"""Tests for repro.ir.expr (affine expressions over loop indices)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.expr import AffineExpr, const, var
from repro.structures.params import LinExpr, S


class TestConstruction:
    def test_var(self):
        e = var("j1")
        assert e.indices() == {"j1"}
        assert e.coeff("j1") == 1
        assert not e.is_constant

    def test_const_int(self):
        e = const(5)
        assert e.is_constant
        assert e.evaluate({}, {}) == 5

    def test_const_symbolic(self):
        e = const(S("p"))
        assert e.is_constant  # no loop index, though symbolic
        assert e.evaluate({}, {"p": 7}) == 7

    def test_zero_coeff_dropped(self):
        e = AffineExpr({"j": 0}, 3)
        assert e.is_constant


class TestArithmetic:
    def test_add_sub(self):
        e = var("j1") + 2 * var("j2") - 3
        assert e.evaluate({"j1": 5, "j2": 1}, {}) == 4

    def test_sub_var(self):
        e = var("j") - var("j")
        assert e.is_constant
        assert e.offset == LinExpr(0)

    def test_mul(self):
        e = (var("j") + 1) * 3
        assert e.evaluate({"j": 2}, {}) == 9

    def test_rsub(self):
        e = 5 - var("j")
        assert e.evaluate({"j": 2}, {}) == 3

    def test_symbolic_offset(self):
        e = var("i") + S("p") - 1
        assert e.evaluate({"i": 2}, {"p": 4}) == 5

    def test_add_linexpr(self):
        e = var("i") + S("u")
        assert e.evaluate({"i": 1}, {"u": 3}) == 4

    @given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9))
    def test_linearity(self, a, b, c):
        e = a * var("x") + b * var("y") + c
        assert e.evaluate({"x": 2, "y": -1}, {}) == 2 * a - b + c


class TestQueries:
    def test_coeff_vector(self):
        e = var("j1") - 2 * var("j3")
        assert e.coeff_vector(("j1", "j2", "j3")) == [1, 0, -2]

    def test_coeff_absent(self):
        assert var("a").coeff("b") == 0

    def test_substitute(self):
        e = var("j") + 1
        out = e.substitute({"j": var("k") - 1})
        assert out.evaluate({"k": 5}, {}) == 5

    def test_substitute_partial(self):
        e = var("j") + var("m")
        out = e.substitute({"j": const(2)})
        assert out.evaluate({"m": 3}, {}) == 5


class TestEquality:
    def test_equal(self):
        assert var("j") + 1 == 1 + var("j")

    def test_int_equality(self):
        assert const(3) == 3

    def test_linexpr_equality(self):
        assert const(S("p")) == S("p")

    def test_hash(self):
        assert len({var("j") + 1, 1 + var("j")}) == 1

    def test_repr(self):
        assert "j" in repr(var("j") - 1)
