"""Tests for repro.structures.indexset."""

import pytest
from hypothesis import given, strategies as st

from repro.structures.indexset import IndexSet
from repro.structures.params import S


class TestConstruction:
    def test_cube(self):
        j = IndexSet.cube(3, 4)
        assert j.dim == 3
        assert j.bounds({}) == [(1, 4)] * 3

    def test_symbolic_cube(self):
        j = IndexSet.cube(2, S("p"))
        assert j.params() == {"p"}
        assert j.bounds({"p": 5}) == [(1, 5), (1, 5)]

    def test_mismatched_bounds(self):
        with pytest.raises(ValueError):
            IndexSet([1], [2, 3])

    def test_names_default(self):
        j = IndexSet.cube(2, 3)
        assert j.names == ("j1", "j2")

    def test_rename(self):
        j = IndexSet.cube(2, 3).rename(("i1", "i2"))
        assert j.names == ("i1", "i2")

    def test_rename_wrong_length(self):
        with pytest.raises(ValueError):
            IndexSet.cube(2, 3).rename(("a",))


class TestProduct:
    def test_dims_add(self):
        a = IndexSet.cube(3, S("u"))
        b = IndexSet.cube(2, S("p")).rename(("i1", "i2"))
        prod = a.product(b)
        assert prod.dim == 5
        assert prod.names == ("j1", "j2", "j3", "i1", "i2")

    def test_size_multiplies(self):
        a = IndexSet.cube(2, 3)
        b = IndexSet.cube(2, 2)
        assert a.product(b).size({}) == a.size({}) * b.size({})

    def test_matmul_bit_level_set(self):
        # Eq. (3.13): 1 <= j1,j2,j3 <= u, 1 <= i1,i2 <= p.
        j = IndexSet.cube(3, S("u")).product(IndexSet.cube(2, S("p")))
        assert j.size({"u": 3, "p": 2}) == 27 * 4


class TestQueries:
    def test_contains(self):
        j = IndexSet.cube(2, 3)
        assert j.contains((1, 3), {})
        assert not j.contains((0, 1), {})
        assert not j.contains((1, 4), {})
        assert not j.contains((1,), {})

    def test_size_empty(self):
        j = IndexSet([2], [1])
        assert j.size({}) == 0

    def test_points_lexicographic(self):
        pts = list(IndexSet.cube(2, 2).points({}))
        assert pts == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_points_count(self):
        j = IndexSet([0, 1], [2, 3])
        assert len(list(j.points({}))) == j.size({}) == 9

    def test_corners(self):
        j = IndexSet([1, 2], [S("u"), 5])
        assert j.corner_min({"u": 9}) == (1, 2)
        assert j.corner_max({"u": 9}) == (9, 5)

    def test_symbolic_bounds_expression(self):
        j = IndexSet([1], [2 * S("p") - 1])
        assert j.bounds({"p": 4}) == [(1, 7)]

    @given(st.integers(1, 5), st.integers(1, 4))
    def test_cube_size(self, dim, upper):
        assert IndexSet.cube(dim, upper).size({}) == upper**dim


class TestEquality:
    def test_equal(self):
        assert IndexSet.cube(2, S("p")) == IndexSet.cube(2, S("p"))

    def test_not_equal(self):
        assert IndexSet.cube(2, S("p")) != IndexSet.cube(2, S("u"))

    def test_names_ignored_in_equality(self):
        assert IndexSet.cube(2, 3) == IndexSet.cube(2, 3).rename(("a", "b"))

    def test_hashable(self):
        assert len({IndexSet.cube(2, 3), IndexSet.cube(2, 3)}) == 1

    def test_repr_mentions_bounds(self):
        r = repr(IndexSet.cube(1, S("u")))
        assert "u" in r
