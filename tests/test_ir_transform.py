"""Tests for repro.ir.transform: single-assignment + broadcast elimination."""

import pytest

from repro.depanalysis import analyze
from repro.ir import builders
from repro.ir.expr import var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.ir.transform import (
    broadcast_directions,
    eliminate_broadcasts,
    to_single_assignment,
)
from repro.structures.indexset import IndexSet


def accumulation_matmul() -> LoopNest:
    """The original accumulation form of Example 2.1 (writes z(j1,j2))."""
    j1, j2, j3 = var("j1"), var("j2"), var("j3")
    return LoopNest(
        ("j1", "j2", "j3"),
        IndexSet.cube(3, 3),
        [
            Statement(
                "S_z",
                ArrayAccess("z", [j1, j2]),
                [
                    ArrayAccess("z", [j1, j2]),
                    ArrayAccess("x", [j1, j3]),
                    ArrayAccess("y", [j3, j2]),
                ],
            )
        ],
        "matmul-2.1",
    )


class TestSingleAssignment:
    def test_accumulation_is_not_single_assignment(self):
        assert not accumulation_matmul().verify_single_assignment({})

    def test_conversion_produces_22(self):
        sa = to_single_assignment(accumulation_matmul())
        assert sa.verify_single_assignment({})
        stmt = sa.statements[0]
        # Write extended to z(j1, j2, j3).
        assert stmt.write.rank == 3
        # Self-read becomes z(j1, j2, j3 - 1).
        z_reads = [a for a in stmt.reads if a.array == "z"]
        assert len(z_reads) == 1
        assert z_reads[0].subscripts[2] == var("j3") - 1

    def test_already_single_assignment_passthrough(self):
        prog = builders.matmul_naive(3)
        sa = to_single_assignment(prog)
        assert [s.write for s in sa.statements] == [
            s.write for s in prog.statements
        ]

    def test_conversion_matches_builder_22(self):
        sa = to_single_assignment(accumulation_matmul())
        # After broadcast elimination both should have the (2.4) structure.
        res_a = analyze(eliminate_broadcasts(sa), {}, "exact")
        res_b = analyze(eliminate_broadcasts(builders.matmul_naive(3)), {"u": 3}, "exact")
        assert res_a.vectors_by_variable() == res_b.vectors_by_variable()

    def test_unconvertible_raises(self):
        # Non-injective write that mentions all indices: j1 + j2.
        j1, j2 = var("j1"), var("j2")
        prog = LoopNest(
            ("j1", "j2"),
            IndexSet.cube(2, 3),
            [Statement("S", ArrayAccess("z", [j1 + j2]),
                       [ArrayAccess("z", [j1 + j2])])],
        )
        with pytest.raises(NotImplementedError):
            to_single_assignment(prog)


class TestBroadcastElimination:
    def test_matmul_directions(self):
        dirs = broadcast_directions(builders.matmul_naive())
        assert dirs == {"x": [0, 1, 0], "y": [1, 0, 0]}

    def test_addshift_directions_eq_33(self):
        dirs = broadcast_directions(builders.addshift_broadcast())
        assert dirs == {"a": [1, 0], "b": [0, 1]}

    def test_matmul_elimination_reproduces_23(self):
        nb = eliminate_broadcasts(builders.matmul_naive(3))
        res = analyze(nb, {"u": 3}, "exact")
        assert res.vectors_by_variable() == {
            "x": {(0, 1, 0)},
            "y": {(1, 0, 0)},
            "z": {(0, 0, 1)},
        }

    def test_addshift_elimination_reproduces_33(self):
        nb = eliminate_broadcasts(builders.addshift_broadcast(3))
        res = analyze(nb, {"p": 3}, "exact")
        assert res.vectors_by_variable() == {
            "a": {(1, 0)},
            "b": {(0, 1)},
            "c": {(0, 1)},
            "s": {(1, -1)},
        }

    def test_output_is_single_assignment(self):
        nb = eliminate_broadcasts(builders.matmul_naive(2))
        assert nb.verify_single_assignment({"u": 2})

    def test_pipelining_statements_prepended(self):
        nb = eliminate_broadcasts(builders.matmul_naive())
        names = [s.name for s in nb.statements]
        assert "S_x_pipe" in names and "S_y_pipe" in names
        assert names.index("S_x_pipe") < names.index("S_z")

    def test_no_broadcast_is_identity_on_reads(self):
        prog = builders.matmul_pipelined(3)
        nb = eliminate_broadcasts(prog)
        assert len(nb.statements) == len(prog.statements)

    def test_directions_lexicographically_positive(self):
        for d in broadcast_directions(builders.matmul_naive()).values():
            first = next(x for x in d if x != 0)
            assert first > 0

    def test_multidim_broadcast_rejected(self):
        # v(j1) read in a 3-D nest: 2-dimensional broadcast space.
        j1 = var("j1")
        prog = LoopNest(
            ("j1", "j2", "j3"),
            IndexSet.cube(3, 2),
            [Statement("S", ArrayAccess("w", [j1, var("j2"), var("j3")]),
                       [ArrayAccess("v", [j1])])],
        )
        with pytest.raises(NotImplementedError):
            broadcast_directions(prog)
