"""Tests for flow/anti/output analysis of multi-write programs."""

import pytest

from repro.depanalysis import analyze
from repro.depanalysis.multiwrite import analyze_multiwrite
from repro.ir.builders import matmul_pipelined
from repro.ir.expr import var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.ir.transform import to_single_assignment
from repro.structures.indexset import IndexSet
from tests.test_ir_transform import accumulation_matmul


class TestAccumulationMatmul:
    """Example 2.1 before single-assignment conversion."""

    def test_output_dependences_present(self):
        res = analyze_multiwrite(accumulation_matmul(), {})
        out = [i for i in res.instances if i.kind == "output"]
        assert out
        # z(j1, j2) rewritten each j3 step: vector (0, 0, 1).
        assert {i.vector for i in out} == {(0, 0, 1)}

    def test_flow_and_output_on_accumulator(self):
        res = analyze_multiwrite(accumulation_matmul(), {})
        kinds = {i.kind for i in res.instances if i.variable == "z"}
        # The read and the overwrite of z(j1,j2) happen within one
        # iteration, so the only *cross-iteration* kinds are flow and
        # output (anti would have distance 0).
        assert kinds == {"flow", "output"}
        assert all(
            i.vector == (0, 0, 1)
            for i in res.instances
            if i.variable == "z"
        )

    def test_single_assignment_conversion_removes_them(self):
        sa = to_single_assignment(accumulation_matmul())
        res = analyze_multiwrite(sa, {})
        assert all(i.kind == "flow" for i in res.instances)

    def test_counts(self):
        res = analyze_multiwrite(accumulation_matmul(), {})
        u = 3
        per_kind = {}
        for i in res.instances:
            per_kind[i.kind] = per_kind.get(i.kind, 0) + 1
        # One chain of u-1 steps per (j1, j2) entry for each kind on z.
        z_chains = u * u * (u - 1)
        assert per_kind["output"] == z_chains
        assert per_kind["flow"] >= z_chains


class TestAgreementOnSingleAssignment:
    def test_flow_matches_plain_analyzer(self):
        prog = matmul_pipelined(3)
        multi = analyze_multiwrite(prog, {"u": 3}, kinds=("flow",))
        plain = analyze(prog, {"u": 3}, "enumerate")
        assert set(multi.instances) == set(plain.instances)

    def test_no_anti_or_output_on_single_assignment(self):
        prog = matmul_pipelined(2)
        res = analyze_multiwrite(prog, {"u": 2})
        assert all(i.kind == "flow" for i in res.instances)


class TestKindsSelection:
    def test_subset(self):
        res = analyze_multiwrite(accumulation_matmul(), {}, kinds=("output",))
        assert res.instances
        assert all(i.kind == "output" for i in res.instances)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            analyze_multiwrite(accumulation_matmul(), {}, kinds=("war",))


class TestAntiDependence:
    def test_classic_war(self):
        # x read at j, overwritten at j+1: anti distance (1,).
        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [4], ("j",)),
            [
                Statement(
                    "S",
                    ArrayAccess("x", [j]),
                    [ArrayAccess("x", [j + 1])],
                )
            ],
        )
        res = analyze_multiwrite(prog, {})
        anti = [i for i in res.instances if i.kind == "anti"]
        assert anti
        assert all(i.vector == (1,) for i in anti)
        # The read sees the *original* value, so no flow dependence arises.
        assert not [i for i in res.instances if i.kind == "flow"]
