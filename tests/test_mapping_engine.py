"""Tests for the design-space search engine (mapping.engine).

Covers the SearchConfig API, the deprecated per-parameter shim, the
unified conflict entry point, the feasibility short circuit, memoization,
and the parallel path's determinism guarantee.
"""

import dataclasses

import pytest

from repro import obs
from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.mapping.conflicts import conflict_directions, find_conflicts
from repro.mapping.engine import (
    DesignCandidate,
    SearchConfig,
    ranked_schedules,
    run_search,
    search_designs,
)
from repro.mapping.feasibility import check_feasibility
from repro.mapping.memo import EvalCache
from repro.mapping.transform import MappingMatrix
from repro.structures.constrained import AffineConstraint, ConstrainedIndexSet


def _signature(candidates):
    return [
        ([list(r) for r in c.mapping.rows], c.mapping.name, c.time,
         c.processors, c.report.summary())
        for c in candidates
    ]


class TestSearchConfig:
    def test_frozen(self):
        config = SearchConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.workers = 2

    def test_block_values_coerced_to_tuple(self):
        config = SearchConfig(block_values=[2, 3])
        assert config.block_values == (2, 3)
        assert hash(config)  # usable as a cache/memo key

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(target_space_dim=0)
        with pytest.raises(ValueError):
            SearchConfig(schedule_bound=-1)
        with pytest.raises(ValueError):
            SearchConfig(max_candidates=0)
        with pytest.raises(ValueError):
            SearchConfig(workers=0)
        with pytest.raises(ValueError):
            SearchConfig(overcollect=0)

    def test_stop_after(self):
        assert SearchConfig(max_candidates=5, overcollect=4).stop_after == 20
        assert SearchConfig(max_candidates=None).stop_after is None
        assert SearchConfig(max_candidates=5, overcollect=None).stop_after is None


class TestLegacyShim:
    def test_config_object_is_silent(self):
        alg = matmul_word_structure()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cands = search_designs(
                alg, {"u": 2}, None,
                SearchConfig(schedule_bound=1, max_candidates=2),
            )
        assert cands

    def test_legacy_kwargs_warn_and_match(self):
        alg = matmul_word_structure()
        with pytest.warns(DeprecationWarning, match="SearchConfig"):
            legacy = search_designs(
                alg, {"u": 2}, None,
                target_space_dim=2, schedule_bound=1, max_candidates=3,
            )
        config = SearchConfig(target_space_dim=2, schedule_bound=1,
                              max_candidates=3)
        assert _signature(legacy) == _signature(
            run_search(alg, {"u": 2}, None, config)
        )

    def test_legacy_positionals_warn_and_match(self):
        alg = matmul_word_structure()
        with pytest.warns(DeprecationWarning):
            legacy = search_designs(alg, {"u": 2}, None, 2, (), 1, 3)
        config = SearchConfig(target_space_dim=2, block_values=(),
                              schedule_bound=1, max_candidates=3)
        assert _signature(legacy) == _signature(
            run_search(alg, {"u": 2}, None, config)
        )

    def test_mixing_config_and_legacy_rejected(self):
        alg = matmul_word_structure()
        with pytest.raises(TypeError, match="not both"):
            search_designs(alg, {"u": 2}, None, SearchConfig(),
                           schedule_bound=1)

    def test_unknown_kwarg_rejected(self):
        alg = matmul_word_structure()
        with pytest.raises(TypeError, match="unexpected keyword"):
            search_designs(alg, {"u": 2}, None, bogus=1)


class TestConflictDispatch:
    def test_box_returns_directions(self):
        t = MappingMatrix([[1, 0, 0], [1, 0, 0]])
        alg = matmul_word_structure()
        out = find_conflicts(t, alg.index_set, {"u": 3})
        assert out
        for d in out:
            assert any(d)
            assert t.map_vector(list(d)) == [0, 0]

    def test_constrained_returns_pairs(self):
        triangle = ConstrainedIndexSet(
            [1, 1], [3, 3], [AffineConstraint((1, -1))], ("i", "j")
        )
        t = MappingMatrix([[1, 0], [1, 0]])  # collapses j: conflicts on i==i
        out = find_conflicts(t, triangle, {}, limit=3)
        assert out
        for a, b in out:
            assert a != b
            assert t.apply(list(a)) == t.apply(list(b))

    def test_cache_reuses_equivalent_queries(self):
        alg = matmul_word_structure()
        t = MappingMatrix([[1, 0, 0], [1, 0, 0]])
        cache = EvalCache()
        first = find_conflicts(t, alg.index_set, {"u": 3}, cache=cache)
        again = find_conflicts(t, alg.index_set, {"u": 3}, cache=cache)
        assert first == again
        assert cache.hits == 1 and cache.misses == 1

    def test_old_name_deprecated(self):
        t = MappingMatrix([[1, 0, 0], [1, 0, 0]])
        alg = matmul_word_structure()
        with pytest.warns(DeprecationWarning, match="find_conflicts"):
            dirs = conflict_directions(t, alg.index_set, {"u": 3})
        assert dirs == find_conflicts(t, alg.index_set, {"u": 3})


class TestShortCircuit:
    def test_rank_failure_skips_rest(self):
        alg = matmul_word_structure()
        # Two identical rows: rank 2 < k = 3.
        t = MappingMatrix([[1, 0, 0], [1, 0, 0], [1, 1, 1]])
        rep = check_feasibility(t, alg, {"u": 2})
        assert rep.rank_ok is False
        assert rep.coprime_ok is None
        assert rep.schedule_valid is None
        assert rep.interconnect_ok is None
        assert rep.conflict_free is None
        assert not rep.feasible
        assert "skipped" in rep.summary()
        assert rep.failed_conditions() == ["rank"]

    def test_full_report_fills_all_flags(self):
        alg = matmul_word_structure()
        t = MappingMatrix([[1, 0, 0], [1, 0, 0], [1, 1, 1]])
        rep = check_feasibility(t, alg, {"u": 2}, full_report=True)
        assert rep.rank_ok is False
        assert rep.coprime_ok is not None
        assert rep.schedule_valid is not None
        assert rep.conflict_free is not None

    def test_feasible_report_has_no_skips(self):
        alg = matmul_bit_level(2, 2, "II")
        rep = check_feasibility(
            designs.fig4_mapping(2), alg, {"u": 2, "p": 2},
            designs.fig4_primitives(2),
        )
        assert rep.feasible
        assert "skipped" not in rep.summary()


class TestRankedSchedules:
    def test_sorted_and_valid(self):
        alg = matmul_word_structure()
        ranked = ranked_schedules(alg, {"u": 3}, 1)
        times = [t for t, _ in ranked]
        assert times == sorted(times)
        assert (7, (1, 1, 1)) in ranked  # the known optimum at u=3

    def test_empty_when_bound_too_small(self):
        alg = matmul_word_structure()
        assert ranked_schedules(alg, {"u": 3}, 0) == []


class TestDeterminism:
    @pytest.mark.parametrize("prims", ["fig4", "fig5"])
    def test_workers_do_not_change_results(self, prims):
        u, p = 2, 2
        alg = matmul_bit_level(u, p, "II")
        binding = {"u": u, "p": p}
        primitives = (designs.fig4_primitives(p) if prims == "fig4"
                      else designs.fig5_primitives())

        def cfg(workers):
            return SearchConfig(target_space_dim=2, block_values=[p],
                                schedule_bound=2, max_candidates=5,
                                workers=workers)

        sequential = run_search(alg, binding, primitives, cfg(1))
        parallel = run_search(alg, binding, primitives, cfg(4))
        assert _signature(parallel) == _signature(sequential)

    def test_parallel_counters_merged(self):
        alg = matmul_bit_level(2, 2, "II")
        config = SearchConfig(block_values=[2], max_candidates=3, workers=2)
        with obs.collecting() as reg:
            cands = run_search(alg, {"u": 2, "p": 2},
                               designs.fig4_primitives(2), config)
        assert cands
        assert reg.counters["mapping.cache_hits"] > 0
        assert reg.counters["mapping.candidates_enumerated"] > 0
        assert reg.gauges["mapping.workers"] == 2


class TestOvercollect:
    def test_exhaustive_at_least_as_good(self):
        alg = matmul_word_structure()
        base = SearchConfig(schedule_bound=1, max_candidates=2, overcollect=1)
        full = SearchConfig(schedule_bound=1, max_candidates=2,
                            overcollect=None)
        capped = run_search(alg, {"u": 3}, None, base)
        exhaustive = run_search(alg, {"u": 3}, None, full)
        assert capped and exhaustive
        assert len(capped) <= base.max_candidates
        # The early stop may miss later, faster designs -- never find
        # better ones than the full scan.
        assert exhaustive[0].time <= capped[0].time

    def test_results_are_candidates(self):
        alg = matmul_word_structure()
        cands = run_search(alg, {"u": 2}, None,
                           SearchConfig(schedule_bound=1, max_candidates=1))
        assert isinstance(cands[0], DesignCandidate)
        assert cands[0].report.feasible
