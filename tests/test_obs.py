"""Tests for the observability substrate (repro.obs)."""

import json

import pytest

from repro import obs
from repro.obs import Histogram, Registry


class TestRegistryScalars:
    def test_counter_accumulates(self):
        reg = Registry()
        reg.count("a")
        reg.count("a", 4)
        reg.count("b", 0)
        assert reg.counters == {"a": 5, "b": 0}

    def test_count_many_with_prefix(self):
        reg = Registry()
        reg.count("layer.x", 1)
        reg.count_many({"x": 2, "y": 3}, prefix="layer.")
        assert reg.counters == {"layer.x": 3, "layer.y": 3}

    def test_gauge_last_wins(self):
        reg = Registry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.gauges["g"] == 7.5

    def test_histogram_aggregation(self):
        reg = Registry()
        for v in (2.0, 4.0, 6.0):
            reg.observe("h", v)
        h = reg.histograms["h"]
        assert (h.count, h.total, h.min, h.max, h.mean) == (3, 12.0, 2.0, 6.0, 4.0)

    def test_empty_histogram_mean(self):
        assert Histogram().mean == 0.0


class TestSpans:
    def test_nesting_builds_tree(self):
        reg = Registry()
        with reg.span("outer") as outer:
            with reg.span("inner-1"):
                pass
            with reg.span("inner-2") as inner2:
                with reg.span("leaf"):
                    pass
        assert [s.name for s in reg.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in inner2.children] == ["leaf"]
        assert [s.name for s in reg.iter_spans()] == [
            "outer", "inner-1", "inner-2", "leaf",
        ]

    def test_parent_ids_and_durations(self):
        reg = Registry()
        with reg.span("outer") as outer:
            with reg.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert 0.0 <= inner.duration <= outer.duration

    def test_span_attrs(self):
        reg = Registry()
        with reg.span("s", u=2, p=3) as sp:
            pass
        assert sp.attrs == {"u": 2, "p": 3}

    def test_current_span(self):
        reg = Registry()
        assert reg.current_span() is None
        with reg.span("s") as sp:
            assert reg.current_span() is sp
        assert reg.current_span() is None

    def test_span_closes_on_exception(self):
        reg = Registry()
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                raise RuntimeError()
        (root,) = reg.roots
        assert root.end is not None
        assert reg.current_span() is None

    def test_span_stats_aggregates_by_name(self):
        reg = Registry()
        for _ in range(3):
            with reg.span("phase"):
                pass
        stats = reg.span_stats()
        assert stats["phase"]["count"] == 3
        assert stats["phase"]["total_s"] >= 0.0


class TestNoOpMode:
    def test_disabled_by_default(self):
        assert obs.get_registry() is None
        assert not obs.enabled()

    def test_helpers_are_noops_when_disabled(self):
        obs.count("x")
        obs.gauge("g", 1)
        obs.observe("h", 1)
        obs.count_many({"a": 1})
        with obs.span("nothing") as sp:
            assert sp is None
        assert obs.current_span() is None

    def test_collecting_installs_and_restores(self):
        assert obs.get_registry() is None
        with obs.collecting() as reg:
            assert obs.get_registry() is reg
            obs.count("seen")
            with obs.collecting() as inner:
                assert obs.get_registry() is inner
                obs.count("inner-seen")
            assert obs.get_registry() is reg
        assert obs.get_registry() is None
        assert reg.counters == {"seen": 1}

    def test_traced_decorator(self):
        calls = []

        @obs.traced("my.fn")
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2  # disabled: plain call
        with obs.collecting() as reg:
            assert fn(2) == 3
        assert calls == [1, 2]
        assert [s.name for s in reg.iter_spans()] == ["my.fn"]


class TestExport:
    def _populated(self):
        reg = Registry()
        with reg.span("root", kind="test"):
            with reg.span("child"):
                pass
        reg.count("c", 2)
        reg.gauge("g", 1.5)
        reg.observe("h", 3.0)
        return reg

    def test_metrics_dict_round_trips_through_json(self):
        reg = self._populated()
        blob = json.dumps(obs.metrics_dict(reg))
        back = json.loads(blob)
        assert back["counters"] == {"c": 2}
        assert back["gauges"] == {"g": 1.5}
        assert back["histograms"]["h"]["count"] == 1
        assert set(back["spans"]) == {"root", "child"}

    def test_trace_jsonl_round_trip(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "trace.jsonl"
        obs.write_trace(reg, path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["root", "child"]
        by_id = {s["id"]: s for s in spans}
        child = next(s for s in spans if s["name"] == "child")
        assert by_id[child["parent"]]["name"] == "root"
        assert records[-1]["type"] == "metrics"
        assert records[-1]["counters"] == {"c": 2}

    def test_write_metrics_file(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "m.json"
        obs.write_metrics(reg, path)
        assert json.loads(path.read_text())["counters"] == {"c": 2}

    def test_render_tree_mentions_everything(self):
        reg = self._populated()
        text = obs.render_tree(reg)
        for needle in ("root", "child", "kind=test", "c", "g", "h"):
            assert needle in text

    def test_render_tree_empty_registry(self):
        assert "no spans" in obs.render_tree(Registry())


class TestInstrumentedLayers:
    def test_feasibility_counters(self):
        from repro.expansion.theorem31 import matmul_bit_level
        from repro.mapping import check_feasibility, designs

        alg = matmul_bit_level(2, 2, "II")
        with obs.collecting() as reg:
            check_feasibility(
                designs.fig4_mapping(2), alg, {"u": 2, "p": 2},
                primitives=designs.fig4_primitives(2),
            )
        assert reg.counters["mapping.candidates_enumerated"] == 1
        assert reg.counters["mapping.feasible"] == 1
        assert reg.counters["mapping.pruned"] == 0
        assert reg.histograms["mapping.feasibility_seconds"].count == 1

    def test_analyze_exact_counters_match_stats(self):
        from repro.depanalysis import analyze
        from repro.ir.expand import expand_bit_level

        prog = expand_bit_level(
            [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [2, 2, 2], 2, "II"
        )
        with obs.collecting() as reg:
            result = analyze(prog, {"p": 2}, method="exact")
        for key, value in result.stats.items():
            assert reg.counters[f"depanalysis.{key}"] == value

    def test_analyze_scalar_times_each_pair(self):
        # Only the scalar reference walks pairs one at a time; the batched
        # engine screens them in bulk and records no per-pair histogram.
        from repro.depanalysis import AnalysisConfig, analyze
        from repro.ir.expand import expand_bit_level

        prog = expand_bit_level(
            [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [2, 2, 2], 2, "II"
        )
        with obs.collecting() as reg:
            result = analyze(prog, {"p": 2}, method="exact",
                             config=AnalysisConfig(backend="scalar",
                                                   cache=False))
        assert (
            reg.histograms["depanalysis.pair_seconds"].count
            == result.stats["pairs_tested"]
        )

    def test_simulator_metrics(self):
        from repro.machine import BitLevelMatmulMachine
        from repro.mapping import designs

        machine = BitLevelMatmulMachine(2, 2, designs.fig4_mapping(2))
        with obs.collecting() as reg:
            run = machine.run([[1, 2], [3, 1]], [[2, 1], [1, 2]])
        assert reg.counters["machine.computations"] == run.sim.computations
        assert reg.gauges["machine.makespan"] == run.sim.makespan
        assert reg.gauges["machine.always_busy"] == int(run.sim.always_busy)
        pe_gauges = {k for k in reg.gauges if k.startswith("machine.pe_busy.")}
        assert len(pe_gauges) == run.sim.processor_count
        link = {k for k in reg.counters if k.startswith("machine.link.")}
        assert link  # dependences moved between PEs
        assert sum(run.sim.pe_busy.values()) == run.sim.computations

    def test_search_designs_enumeration_counters(self):
        from repro.expansion.theorem31 import matmul_bit_level
        from repro.mapping import designs
        from repro.mapping.engine import SearchConfig, run_search

        alg = matmul_bit_level(2, 2, "II")
        with obs.collecting() as reg:
            found = run_search(
                alg, {"u": 2, "p": 2}, designs.fig4_primitives(2),
                SearchConfig(target_space_dim=2, block_values=[2],
                             max_candidates=2),
            )
        assert found
        c = reg.counters
        assert c["mapping.candidates_enumerated"] == (
            c["mapping.feasible"] + c["mapping.pruned"]
        )
        assert c["mapping.space_candidates"] > 0
        assert c["mapping.schedules_tried"] >= c["mapping.schedules_valid"]
        assert c["mapping.cache_hits"] > 0
        assert reg.gauges["mapping.workers"] == 1
        assert "mapping.search_designs" in reg.span_stats()
