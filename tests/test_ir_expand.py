"""Tests for repro.ir.expand (the explicit bit-level program generator)."""

import pytest

from repro.depanalysis import analyze
from repro.ir.expand import EXPANSION_I, EXPANSION_II, expand_bit_level


class TestShape:
    def test_dimension(self):
        prog = expand_bit_level([1], [1], [1], [1], [4], 3)
        assert prog.dim == 3
        assert prog.index_names == ("j1", "i1", "i2")

    def test_ndim(self):
        prog = expand_bit_level(
            [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [2, 2, 2], 2
        )
        assert prog.dim == 5
        assert prog.index_names == ("j1", "j2", "j3", "i1", "i2")

    def test_index_set_size(self):
        prog = expand_bit_level([1], [1], [1], [1], [4], 3)
        assert prog.index_set.size({}) == 4 * 9

    def test_unknown_expansion_rejected(self):
        with pytest.raises(ValueError):
            expand_bit_level([1], [1], [1], [1], [3], 2, expansion="III")

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_bit_level([1, 0], [1], [1], [1], [3], 2)

    def test_symbolic_p(self):
        prog = expand_bit_level([1], [1], [1], [1], [4])
        assert "p" in prog.index_set.params()


class TestGuardStructure:
    @pytest.mark.parametrize("expansion", [EXPANSION_I, EXPANSION_II])
    def test_single_assignment(self, expansion):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, expansion)
        assert prog.verify_single_assignment({})

    @pytest.mark.parametrize("expansion", [EXPANSION_I, EXPANSION_II])
    def test_every_point_has_exactly_one_sum_statement(self, expansion):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, expansion)
        sum_stmts = [s for s in prog.statements if s.write.array == "s"]
        for point in prog.index_set.points({}):
            active = [s for s in sum_stmts if s.active_at(point, {})]
            assert len(active) == 1, (point, [s.name for s in active])

    @pytest.mark.parametrize("expansion", [EXPANSION_I, EXPANSION_II])
    def test_x_pipelining_guards_partition(self, expansion):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, expansion)
        x_stmts = [s for s in prog.statements if s.write.array == "x"]
        for point in prog.index_set.points({}):
            assert sum(s.active_at(point, {}) for s in x_stmts) == 1


class TestDependenceContent:
    def test_expansion2_c2_on_southern_hyperplane(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, EXPANSION_II)
        res = analyze(prog, {}, "enumerate")
        sinks = res.sinks_of((0, 0, 2))
        assert sinks  # c' dependences exist
        assert all(s[1] == 3 for s in sinks)  # i1 = p
        assert all(s[2] >= 3 for s in sinks)  # source inside lattice

    def test_expansion1_c2_at_final_iteration(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, EXPANSION_I)
        res = analyze(prog, {}, "enumerate")
        sinks = res.sinks_of((0, 0, 2))
        assert sinks
        assert all(s[0] == 3 for s in sinks)  # j = u

    def test_expansion1_d3_uniform(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, EXPANSION_I)
        res = analyze(prog, {}, "enumerate")
        # z-prev edges everywhere with j > 1 (source inside): (u-1)*p² sinks.
        sinks = {s for s in res.sinks_of((1, 0, 0))}
        z_sinks = {
            i.sink for i in res.instances
            if i.vector == (1, 0, 0) and i.variable == "s"
        }
        assert len(z_sinks) == 2 * 4  # (u-1) * p²

    def test_expansion2_d3_boundary_only(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, EXPANSION_II)
        res = analyze(prog, {}, "enumerate")
        z_sinks = {
            i.sink for i in res.instances
            if i.vector == (1, 0, 0) and i.variable == "s"
        }
        assert all(s[1] == 3 or s[2] == 1 for s in z_sinks)
        assert len(z_sinks) == 2 * (2 * 3 - 1)  # (u-1) * (2p-1)

    def test_expansion2_d6_uniform(self):
        prog = expand_bit_level([1], [1], [1], [1], [2], 3, EXPANSION_II)
        res = analyze(prog, {}, "enumerate")
        sinks = res.sinks_of((0, 1, -1))
        # valid wherever source is inside: i1 >= 2 and i2 <= p-1, all j.
        assert len(sinks) == 2 * 2 * 2

    def test_distinct_vector_sets_match_paper(self):
        for expansion in (EXPANSION_I, EXPANSION_II):
            prog = expand_bit_level([1], [1], [1], [1], [3], 3, expansion)
            res = analyze(prog, {}, "enumerate")
            assert set(res.distinct_vectors()) == {
                (1, 0, 0), (0, 1, 0), (0, 0, 1), (0, 1, -1), (0, 0, 2)
            }
