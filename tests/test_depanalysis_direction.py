"""Tests for direction-vector summaries."""

from repro.depanalysis import analyze
from repro.depanalysis.direction import (
    carried_loops,
    direction_of,
    direction_vectors,
    parallel_loops,
)
from repro.ir.builders import matmul_pipelined, model_1d


class TestDirectionOf:
    def test_forward(self):
        assert direction_of((1, 0, 0)) == "(<,=,=)"

    def test_mixed(self):
        assert direction_of((0, 1, -1)) == "(=,<,>)"

    def test_zero(self):
        assert direction_of((0, 0)) == "(=,=)"


class TestSummaries:
    def test_matmul_directions(self):
        res = analyze(matmul_pipelined(3), {"u": 3}, "enumerate")
        dirs = direction_vectors(res)
        assert set(dirs) == {"(<,=,=)", "(=,<,=)", "(=,=,<)"}
        # Each of the 3 vectors contributes (u-1)*u² = 18 instances.
        assert all(count == 18 for count in dirs.values())

    def test_1d(self):
        res = analyze(model_1d(upper=4), {}, "enumerate")
        assert set(direction_vectors(res)) == {"(<)"}


class TestLoopParallelism:
    def test_matmul_all_loops_carried(self):
        # Pipelined matmul: every loop carries a dependence (x along j2,
        # y along j1, z along j3) -- no fully parallel loop.
        res = analyze(matmul_pipelined(2), {"u": 2}, "enumerate")
        assert carried_loops(res.distinct_vectors()) == {0, 1, 2}
        assert parallel_loops(res.distinct_vectors(), 3) == set()

    def test_inner_equal_positions_do_not_carry(self):
        # Distances (1, -1) are carried by loop 0 only.
        assert carried_loops([(1, -1)]) == {0}
        assert parallel_loops([(1, -1)], 2) == {1}

    def test_empty(self):
        assert carried_loops([]) == set()
        assert parallel_loops([], 2) == {0, 1}
