"""Functional LU on the array: integration test of the triangular machinery."""

import random
from fractions import Fraction

import pytest

from examples.lu_decomposition import lu_on_array


def make_matrix(n, seed=0):
    rng = random.Random(seed)
    a = [[Fraction(rng.randrange(-4, 5)) for _ in range(n)] for _ in range(n)]
    for i in range(n):
        a[i][i] += Fraction(5 * n)  # diagonal dominance: nonzero pivots
    return a


class TestLUOnArray:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_lu_exact(self, n):
        a = make_matrix(n, seed=n)
        lower, upper, sim = lu_on_array(a, n)
        for i in range(n):
            for j in range(n):
                got = sum(lower[i][k] * upper[k][j] for k in range(n))
                assert got == a[i][j]

    def test_l_unit_lower_triangular(self):
        a = make_matrix(4, seed=9)
        lower, upper, _ = lu_on_array(a, 4)
        for i in range(4):
            assert lower[i][i] == 1
            for j in range(i + 1, 4):
                assert lower[i][j] == 0
                assert upper[j][i] == 0

    def test_makespan_matches_formula(self):
        n = 4
        a = make_matrix(n, seed=2)
        _, _, sim = lu_on_array(a, n)
        assert sim.makespan == 3 * (n - 1) + 1
        assert sim.computations == sum(k * k for k in range(1, n + 1))

    def test_zero_pivot_detected(self):
        a = [[Fraction(0), Fraction(1)], [Fraction(1), Fraction(0)]]
        with pytest.raises(ZeroDivisionError):
            lu_on_array(a, 2)
