"""Tests for repro.structures.dependence."""

import pytest

from repro.structures.conditions import Eq, Ne, TRUE
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import S


class TestDependenceVector:
    def test_uniform_by_default(self):
        v = DependenceVector([1, 0], ("x",))
        assert v.is_uniform
        assert v.valid_at((5, 5), {})

    def test_conditional(self):
        v = DependenceVector([0, 1], ("y",), Eq(0, 1))
        assert not v.is_uniform
        assert v.valid_at((1, 9), {})
        assert not v.valid_at((2, 9), {})

    def test_dim(self):
        assert DependenceVector([1, 2, 3]).dim == 3

    def test_prefixed_vector(self):
        v = DependenceVector([1, -1], ("s",), Ne(0, 1))
        pv = v.prefixed(3)
        assert pv.vector == (0, 0, 0, 1, -1)
        # Validity axis shifted by 3 by default.
        assert pv.valid_at((9, 9, 9, 2, 5), {})
        assert not pv.valid_at((9, 9, 9, 1, 5), {})

    def test_prefixed_axis_offset_zero(self):
        v = DependenceVector([1, 0], ("a",), Eq(3, 1))
        pv = v.prefixed(3, axis_offset=0)
        assert pv.vector == (0, 0, 0, 1, 0)
        assert pv.validity == Eq(3, 1)

    def test_suffixed(self):
        v = DependenceVector([1, 0, 0], ("y",), Eq(4, 1))
        sv = v.suffixed(2)
        assert sv.vector == (1, 0, 0, 0, 0)
        assert sv.validity == Eq(4, 1)  # axes unchanged

    def test_with_validity(self):
        v = DependenceVector([1], ("x",)).with_validity(Eq(0, 2))
        assert not v.is_uniform

    def test_with_causes(self):
        v = DependenceVector([1], ("x",)).with_causes(("y", "c"))
        assert set(v.causes) == {"y", "c"}

    def test_equality_cause_order_insensitive(self):
        a = DependenceVector([0, 1], ("y", "c"))
        b = DependenceVector([0, 1], ("c", "y"))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_validity(self):
        a = DependenceVector([0, 1], ("y",), TRUE)
        b = DependenceVector([0, 1], ("y",), Ne(1, 1))
        assert a != b


class TestDependenceMatrix:
    def make_addshift(self):
        # D_as of eq. (3.4).
        return DependenceMatrix(
            [
                DependenceVector([1, 0], ("a",)),
                DependenceVector([0, 1], ("b", "c")),
                DependenceVector([1, -1], ("s",)),
            ]
        )

    def test_container(self):
        d = self.make_addshift()
        assert len(d) == 3
        assert d[0].vector == (1, 0)
        assert [v.vector for v in d] == [(1, 0), (0, 1), (1, -1)]

    def test_dim(self):
        assert self.make_addshift().dim == 2

    def test_as_matrix(self):
        assert self.make_addshift().as_matrix() == [[1, 0, 1], [0, 1, -1]]

    def test_columns(self):
        assert self.make_addshift().columns() == [(1, 0), (0, 1), (1, -1)]

    def test_uniform(self):
        assert self.make_addshift().is_uniform

    def test_not_uniform(self):
        d = DependenceMatrix([DependenceVector([1], (), Eq(0, 1))])
        assert not d.is_uniform

    def test_by_cause(self):
        d = self.make_addshift()
        assert [v.vector for v in d.by_cause("c")] == [(0, 1)]
        assert d.by_cause("nope") == []

    def test_inconsistent_dims_rejected(self):
        with pytest.raises(ValueError):
            DependenceMatrix(
                [DependenceVector([1]), DependenceVector([1, 2])]
            )

    def test_valid_vectors_at(self):
        d = DependenceMatrix(
            [
                DependenceVector([1, 0], ("a",), Eq(0, 1)),
                DependenceVector([0, 1], ("b",), TRUE),
            ]
        )
        assert len(d.valid_vectors_at((1, 5), {})) == 2
        assert len(d.valid_vectors_at((2, 5), {})) == 1

    def test_structurally_equal_extensional(self):
        # Same extension, different syntax: Eq(0, p) vs Eq(0, 3) at p=3.
        j = IndexSet.cube(2, 3)
        a = DependenceMatrix([DependenceVector([1, 0], ("x",), Eq(0, S("p")))])
        b = DependenceMatrix([DependenceVector([1, 0], ("x",), Eq(0, 3))])
        assert a.structurally_equal(b, j, {"p": 3})
        assert not a.structurally_equal(b, j, {"p": 2})

    def test_empty_matrix(self):
        d = DependenceMatrix([])
        assert len(d) == 0
        assert d.dim == 0
        assert d.is_uniform
