"""Tests for the command-line interfaces."""

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.__main__ import main as experiments_main


class TestTopLevelCli:
    def test_structure(self, capsys):
        assert main(["structure", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "5-dimensional" in out
        assert "c'" in out

    def test_structure_expansion1(self, capsys):
        assert main(["structure", "--expansion", "I"]) == 0
        assert "expI" in capsys.readouterr().out

    def test_design(self, capsys):
        assert main(["design", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "Fig. 5" in out
        assert "t = 7" in out and "t = 9" in out

    def test_simulate_fig4(self, capsys):
        assert main(["simulate", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "product correct" in out and "True" in out

    def test_simulate_fig5_with_gantt(self, capsys):
        assert main(
            ["simulate", "--u", "2", "--p", "2", "--design", "fig5", "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExperimentsCli:
    def test_single_experiment(self, capsys):
        assert experiments_main(["e1"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out

    def test_unknown_id(self, capsys):
        assert experiments_main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_multiple(self, capsys):
        assert experiments_main(["e8", "e1"]) == 0
