"""Tests for the command-line interfaces."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.__main__ import main as experiments_main


class TestTopLevelCli:
    def test_structure(self, capsys):
        assert main(["structure", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "5-dimensional" in out
        assert "c'" in out

    def test_structure_expansion1(self, capsys):
        assert main(["structure", "--expansion", "I"]) == 0
        assert "expI" in capsys.readouterr().out

    def test_design(self, capsys):
        assert main(["design", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "Fig. 5" in out
        assert "t = 7" in out and "t = 9" in out

    def test_search(self, capsys):
        assert main(["search", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "design-space search" in out
        assert "T = [S; Π]" in out
        assert "workers=1" in out

    def test_search_parallel_output_identical(self, capsys):
        assert main(["search", "--u", "2", "--p", "2"]) == 0
        sequential = capsys.readouterr().out
        assert main(["search", "--u", "2", "--p", "2", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # Same ranked table; only the workers= header differs.
        strip = lambda text: text.splitlines()[1:]
        assert strip(parallel) == strip(sequential)

    def test_search_unconstrained_primitives(self, capsys):
        assert main(
            ["search", "--u", "2", "--p", "2", "--primitives", "none",
             "--max-candidates", "2"]
        ) == 0
        assert "primitives=none" in capsys.readouterr().out

    def test_search_metrics_out(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        assert main(
            ["search", "--u", "2", "--p", "2",
             "--metrics-out", str(out_file), "--quiet-metrics"]
        ) == 0
        metrics = json.loads(out_file.read_text())
        assert metrics["counters"]["mapping.cache_hits"] > 0
        assert metrics["counters"]["mapping.designs_found"] > 0
        assert metrics["gauges"]["mapping.workers"] == 1
        assert "mapping.search_designs" in metrics["spans"]

    def test_simulate_fig4(self, capsys):
        assert main(["simulate", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr().out
        assert "product correct" in out and "True" in out

    def test_simulate_fig5_with_gantt(self, capsys):
        assert main(
            ["simulate", "--u", "2", "--p", "2", "--design", "fig5", "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestObservabilityFlags:
    def test_structure_metrics_out(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        assert main(
            ["structure", "--u", "2", "--p", "2", "--metrics-out", str(out_file)]
        ) == 0
        captured = capsys.readouterr()
        assert "5-dimensional" in captured.out  # normal output intact
        assert "== trace ==" in captured.err
        metrics = json.loads(out_file.read_text())
        assert "cli.structure" in metrics["spans"]

    def test_design_metrics_out(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        assert main(
            ["design", "--u", "2", "--p", "2",
             "--metrics-out", str(out_file), "--quiet-metrics"]
        ) == 0
        assert capsys.readouterr().err == ""  # --quiet-metrics
        metrics = json.loads(out_file.read_text())
        assert metrics["counters"]["mapping.candidates_enumerated"] == 2
        assert metrics["counters"]["mapping.pruned"] == 0
        assert metrics["spans"]["cli.design"]["total_s"] > 0

    def test_simulate_metrics_and_trace(self, tmp_path, capsys):
        m_file = tmp_path / "m.json"
        t_file = tmp_path / "trace.jsonl"
        assert main(
            ["simulate", "--u", "2", "--p", "2", "--metrics-out", str(m_file),
             "--trace", str(t_file), "--quiet-metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "condition 5 (some PE busy at every beat): True" in out
        assert "per-PE utilization:" in out
        assert "PE(3, 3):" in out
        metrics = json.loads(m_file.read_text())
        assert metrics["counters"]["machine.store_reads"] > 0
        assert metrics["counters"]["machine.store_writes"] > 0
        assert any(
            name.startswith("machine.pe_busy.") for name in metrics["gauges"]
        )
        records = [
            json.loads(line) for line in t_file.read_text().splitlines()
        ]
        assert records[-1]["type"] == "metrics"
        assert any(
            r["type"] == "span" and r["name"] == "machine.simulate"
            for r in records
        )

    def test_search_chrome_trace_with_workers(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        assert main(
            ["search", "--u", "2", "--p", "2", "--workers", "2",
             "--trace", str(trace_file), "--trace-format", "chrome",
             "--quiet-metrics"]
        ) == 0
        rows = json.loads(trace_file.read_text())
        assert isinstance(rows, list) and rows
        for row in rows:
            for key in ("ts", "dur", "pid", "tid", "name"):
                assert key in row
        span_pids = {r["pid"] for r in rows if r.get("ph") == "X"}
        assert len(span_pids) >= 2  # parent + at least one worker track
        names = {r["name"] for r in rows}
        assert "cli.search" in names
        assert "mapping.evaluate_space" in names

    def test_simulate_chrome_trace_counter_tracks(self, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main(
            ["simulate", "--u", "2", "--p", "2",
             "--trace", str(trace_file), "--trace-format", "chrome",
             "--quiet-metrics"]
        ) == 0
        rows = json.loads(trace_file.read_text())
        counters = [r for r in rows if r.get("ph") == "C"]
        assert any(r["name"].startswith("machine.pe_busy.") for r in counters)
        assert any(r["name"] == "machine.busy_pes" for r in counters)

    def test_trace_renders_progress_lines(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        assert main(
            ["verify", "--seed", "0", "--cases", "3",
             "--oracle", "theorem31", "--trace", str(trace_file)]
        ) == 0
        err = capsys.readouterr().err
        assert "[verify.theorem31] 3/3" in err
        assert "done" in err

    def test_flags_accepted_before_subcommand(self, tmp_path):
        out_file = tmp_path / "m.json"
        assert main(
            ["--metrics-out", str(out_file), "--quiet-metrics",
             "design", "--u", "2", "--p", "2"]
        ) == 0
        assert "cli.design" in json.loads(out_file.read_text())["spans"]

    def test_no_flags_installs_no_registry(self, capsys):
        from repro import obs

        assert main(["simulate", "--u", "2", "--p", "2"]) == 0
        out = capsys.readouterr()
        assert obs.get_registry() is None
        assert "condition 5" not in out.out
        assert out.err == ""

    def test_experiments_records_per_experiment_spans(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        assert main(
            ["experiments", "e1", "--metrics-out", str(out_file),
             "--quiet-metrics"]
        ) == 0
        metrics = json.loads(out_file.read_text())
        assert "experiment.e1" in metrics["spans"]


class TestExperimentsCli:
    def test_single_experiment(self, capsys):
        assert experiments_main(["e1"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASS" in out

    def test_unknown_id(self, capsys):
        assert experiments_main(["e99"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_multiple(self, capsys):
        assert experiments_main(["e8", "e1"]) == 0
