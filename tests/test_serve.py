"""Tests for the analysis-as-a-service tier (repro.serve).

Covers the frozen JobSpec schema and its exact JSON round-trip, the
shared dispatch's CLI-output parity, request coalescing (N concurrent
identical analyze jobs -> exactly one vectorized-engine call), analyze
batching, budget enforcement, the HTTP client/server round trip, and
the promoted top-level API with its deprecation shims.
"""

import json
import re
import threading
import time

import pytest

from repro.serve import (
    JobLimits,
    JobResult,
    JobSpec,
    ServeClient,
    ServerConfig,
    ServerThread,
    job_key,
    run_job,
)
from repro.serve import dispatch as dispatch_mod


def _norm(text: str) -> str:
    """Mask wall-clock timings so outputs can be compared byte-wise."""
    return re.sub(r"\d+\.\d+ms", "Tms", re.sub(r"\d+\.\d+s", "Ts", text))


# ---------------------------------------------------------------------------
# JobSpec / JobResult schema
# ---------------------------------------------------------------------------

class TestJobSchema:
    def test_exact_json_round_trip(self):
        spec = JobSpec(
            kind="search", u=2, p=2, block=(2, 3), oracles=("mapping",),
            max_candidates=3, budget_s=9.5,
        )
        wire = json.loads(json.dumps(spec.to_payload()))
        again = JobSpec.from_payload(wire)
        assert again == spec
        assert again.to_payload() == spec.to_payload()

    def test_round_trip_preserves_every_field(self):
        from dataclasses import fields

        spec = JobSpec(kind="analyze")
        payload = spec.to_payload()
        assert set(payload) == {f.name for f in fields(JobSpec)} | {"schema"}

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job fields: turbo"):
            JobSpec.from_payload({"kind": "analyze", "turbo": True})

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            JobSpec.from_payload({"schema": 99, "kind": "analyze"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec.from_payload({"u": 2})

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(kind="frobnicate")
        with pytest.raises(ValueError):
            JobSpec(kind="analyze", u=0)
        with pytest.raises(ValueError):
            JobSpec(kind="analyze", budget_s=0.0)

    def test_job_key_is_content_address(self):
        a = JobSpec(kind="analyze", u=2, p=2)
        b = JobSpec.from_payload(a.to_payload())
        c = JobSpec(kind="analyze", u=2, p=3)
        assert job_key(a) == job_key(b)
        assert job_key(a) != job_key(c)

    def test_result_round_trip(self):
        result = JobResult(
            kind="simulate", status="ok", exit_code=0, output="hi\n",
            data={"makespan": 7}, elapsed_s=0.25,
        )
        again = JobResult.from_payload(
            json.loads(json.dumps(result.to_payload()))
        )
        assert again == result
        assert again.ok


# ---------------------------------------------------------------------------
# Dispatch: CLI parity
# ---------------------------------------------------------------------------

class TestDispatchParity:
    """run_job output is byte-identical to the CLI subcommand's stdout."""

    @pytest.mark.parametrize("argv, spec", [
        (
            ["analyze", "--u", "2", "--p", "2", "--no-cache"],
            JobSpec(kind="analyze", u=2, p=2, cache=False),
        ),
        (
            ["analyze", "--symbolic", "--u", "2", "--p", "2", "--no-cache"],
            JobSpec(kind="analyze_symbolic", u=2, p=2, cache=False),
        ),
        (
            ["search", "--u", "2", "--p", "2", "--max-candidates", "2"],
            JobSpec(kind="search", u=2, p=2, max_candidates=2),
        ),
        (
            ["simulate", "--u", "2", "--p", "2"],
            JobSpec(kind="simulate", u=2, p=2),
        ),
        (
            ["verify", "--cases", "2", "--budget-s", "10"],
            JobSpec(kind="verify", cases=2, oracle_budget_s=10.0),
        ),
    ])
    def test_cli_equals_dispatch(self, argv, spec, capsys):
        from repro.__main__ import main

        assert main(argv) == 0
        cli_out = capsys.readouterr().out
        result = run_job(spec)
        assert result.ok
        assert _norm(result.output) == _norm(cli_out)

    def test_simulate_exit_code_and_data(self):
        result = run_job(JobSpec(kind="simulate", u=2, p=2))
        assert result.exit_code == 0
        assert result.data["correct"] is True
        assert result.data["makespan"] > 0

    def test_handler_exception_is_structured(self, monkeypatch):
        import repro.mapping.designs as designs_mod

        def boom(p):
            raise RuntimeError("seeded failure")

        monkeypatch.setattr(designs_mod, "fig4_mapping", boom)
        result = run_job(JobSpec(kind="simulate", u=2, p=2))
        assert result.status == "error"
        assert result.exit_code == 3
        assert "seeded failure" in result.error


# ---------------------------------------------------------------------------
# Budgets / admission control
# ---------------------------------------------------------------------------

class TestLimits:
    def test_oversized_analyze_refused(self):
        limits = JobLimits(max_points=1_000)
        result = run_job(JobSpec(kind="analyze", u=10, p=8), limits=limits)
        assert result.status == "error"
        assert result.exit_code == 2
        assert result.error.startswith("budget:")

    def test_oversized_verify_refused(self):
        limits = JobLimits(max_cases=10)
        result = run_job(JobSpec(kind="verify", cases=100), limits=limits)
        assert result.status == "error"
        assert "verify cases" in result.error

    def test_effective_budget(self):
        limits = JobLimits(max_budget_s=5.0)
        assert limits.effective_budget(JobSpec(kind="analyze")) == 5.0
        assert limits.effective_budget(
            JobSpec(kind="analyze", budget_s=2.0)
        ) == 2.0
        assert limits.effective_budget(
            JobSpec(kind="analyze", budget_s=60.0)
        ) == 5.0


# ---------------------------------------------------------------------------
# The server: coalescing, batching, budgets, streaming
# ---------------------------------------------------------------------------

@pytest.fixture()
def server():
    with ServerThread(ServerConfig()) as handle:
        yield handle


class TestServer:
    def test_health_and_stats(self, server):
        client = ServeClient(port=server.port)
        assert client.health()["ok"] is True
        stats = client.stats()
        assert stats["inflight"] == 0

    def test_concurrent_identical_jobs_coalesce_to_one_engine_call(
        self, server
    ):
        """The acceptance check: 8 identical analyze submissions, one
        vectorized-engine invocation, 8 byte-identical results."""
        spec = JobSpec(kind="analyze", u=2, p=2, cache=False)
        results = [None] * 8

        def worker(i):
            results[i] = ServeClient(port=server.port).run(spec, timeout=120)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        payloads = [r.to_payload() for r in results]
        assert all(p == payloads[0] for p in payloads)
        assert results[0].ok
        stats = ServeClient(port=server.port).stats()["server"]
        assert stats["analysis.engine_calls"] == 1
        assert stats["serve.executions"] == 1
        assert stats["serve.jobs_submitted"] == 8
        assert stats["serve.jobs_coalesced"] == 7

    def test_completed_results_still_coalesce(self, server):
        client = ServeClient(port=server.port)
        spec = JobSpec(kind="simulate", u=2, p=2)
        first = client.run(spec, timeout=60)
        submitted = client.submit(spec)
        assert submitted["coalesced"] is True
        assert client.wait(
            submitted["job_id"], timeout=30
        ).to_payload() == first.to_payload()

    def test_batch_compatible_analyze_jobs_fuse(self, server):
        client = ServeClient(port=server.port)
        specs = [
            JobSpec(kind="analyze", u=u, p=p, cache=False)
            for u, p in ((2, 2), (2, 3), (3, 2))
        ]
        results = client.run_many(specs, timeout=120)
        assert all(r.ok for r in results)
        for spec, result in zip(specs, results):
            solo = run_job(spec)
            assert _norm(result.output) == _norm(solo.output)
        stats = client.stats()["server"]
        assert stats["analysis.engine_calls"] == 1
        assert stats["serve.batches"] == 1
        assert stats["serve.batched_jobs"] == 3

    def test_mixed_batch_runs_every_kind(self, server):
        client = ServeClient(port=server.port)
        specs = [
            JobSpec(kind="analyze", u=2, p=2, cache=False),
            JobSpec(kind="simulate", u=2, p=2),
            JobSpec(kind="search", u=2, p=2, max_candidates=2),
            JobSpec(kind="verify", cases=2, oracle_budget_s=10.0),
        ]
        results = client.run_many(specs, timeout=180)
        assert [r.kind for r in results] == [s.kind for s in specs]
        assert all(r.ok for r in results)

    def test_server_output_matches_direct_dispatch(self, server):
        client = ServeClient(port=server.port)
        for spec in (
            JobSpec(kind="analyze", u=2, p=2, cache=False),
            JobSpec(kind="simulate", u=2, p=2),
        ):
            served = client.run(spec, timeout=60)
            direct = run_job(spec)
            assert _norm(served.output) == _norm(direct.output)

    def test_event_stream_ends_with_job_done(self, server):
        client = ServeClient(port=server.port)
        job_id = client.submit(JobSpec(kind="simulate", u=2, p=2))["job_id"]
        events = list(client.iter_events(job_id))
        assert events
        assert events[-1]["type"] == "job_done"
        assert events[-1]["status"] == "ok"
        # The simulator's instrumentation flowed through the job registry.
        assert any(e.get("type") == "span_end" for e in events)

    def test_unknown_job_is_404(self, server):
        from repro.serve import ServeError

        client = ServeClient(port=server.port)
        with pytest.raises(ServeError) as excinfo:
            client.status("j999999")
        assert excinfo.value.status == 404

    def test_malformed_spec_is_400(self, server):
        from repro.serve import ServeError

        client = ServeClient(port=server.port)
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/v1/jobs", {"kind": "nope"})
        assert excinfo.value.status == 400

    def test_admission_refusal_is_structured(self):
        config = ServerConfig(limits=JobLimits(max_points=10))
        with ServerThread(config) as handle:
            client = ServeClient(port=handle.port)
            result = client.run(
                JobSpec(kind="analyze", u=3, p=3), timeout=30
            )
            assert result.status == "error"
            assert result.exit_code == 2
            assert result.error.startswith("budget:")


class TestServerBudget:
    def test_budget_timeout_is_structured(self, monkeypatch):
        """A job overrunning its wall-clock budget gets status="timeout"
        and the server stays healthy for subsequent jobs."""
        real_run_job = dispatch_mod.run_job
        release = threading.Event()

        def slow_run_job(spec, registry=None, limits=None):
            if spec.kind == "verify":
                release.wait(20)
            return real_run_job(spec, registry=registry, limits=limits)

        monkeypatch.setattr(dispatch_mod, "run_job", slow_run_job)
        try:
            with ServerThread(ServerConfig()) as handle:
                client = ServeClient(port=handle.port)
                result = client.run(
                    JobSpec(
                        kind="verify", cases=2, oracle_budget_s=10.0,
                        budget_s=0.3,
                    ),
                    timeout=30,
                )
                assert result.status == "timeout"
                assert result.exit_code == 4
                assert "budget" in result.error
                stats = client.stats()["server"]
                assert stats["serve.jobs_timed_out"] == 1
                # The orphaned worker must not wedge the server.
                after = client.run(
                    JobSpec(kind="simulate", u=2, p=2), timeout=60
                )
                assert after.ok
        finally:
            release.set()

    def test_server_default_budget_applies(self, monkeypatch):
        real_run_job = dispatch_mod.run_job
        release = threading.Event()

        def slow_run_job(spec, registry=None, limits=None):
            release.wait(20)
            return real_run_job(spec, registry=registry, limits=limits)

        monkeypatch.setattr(dispatch_mod, "run_job", slow_run_job)
        try:
            config = ServerConfig(limits=JobLimits(max_budget_s=0.3))
            with ServerThread(config) as handle:
                client = ServeClient(port=handle.port)
                result = client.run(
                    JobSpec(kind="simulate", u=2, p=2), timeout=30
                )
                assert result.status == "timeout"
        finally:
            release.set()


# ---------------------------------------------------------------------------
# The analyze_symbolic job kind
# ---------------------------------------------------------------------------

class TestSymbolicJobs:
    def test_spec_round_trip_and_job_key(self):
        spec = JobSpec(kind="analyze_symbolic", u=64, p=64, cache=False)
        again = JobSpec.from_payload(json.loads(json.dumps(spec.to_payload())))
        assert again == spec
        assert job_key(again) == job_key(spec)
        other = JobSpec(kind="analyze_symbolic", u=65, p=64, cache=False)
        assert job_key(other) != job_key(spec)
        # Same sizes, different kind: different computation, different key.
        concrete = JobSpec(kind="analyze", u=64, p=64, cache=False)
        assert job_key(concrete) != job_key(spec)

    def test_huge_sizes_admitted_under_points_ceiling(self):
        # The symbolic path never enumerates the iteration space, so the
        # admission estimate is 0 regardless of u/p -- u=p=1024 runs even
        # on a server that refuses a u=3 concrete analysis.
        limits = JobLimits(max_points=10)
        spec = JobSpec(kind="analyze_symbolic", u=1024, p=1024, cache=False)
        result = run_job(spec, limits=limits)
        assert result.ok
        assert result.data["closed_form"] is True
        assert result.data["instances"] > 4_000_000_000_000_000
        refused = run_job(JobSpec(kind="analyze", u=3, p=3), limits=limits)
        assert refused.status == "error"
        assert "budget" in refused.error

    def test_data_agrees_with_concrete_analysis(self):
        symbolic = run_job(
            JobSpec(kind="analyze_symbolic", u=2, p=2, cache=False)
        )
        concrete = run_job(JobSpec(kind="analyze", u=2, p=2, cache=False))
        assert symbolic.ok and concrete.ok
        assert symbolic.data["instances"] == concrete.data["instances"]
        assert (
            symbolic.data["distinct_vectors"]
            == concrete.data["distinct_vectors"]
        )

    def test_identical_symbolic_jobs_coalesce(self, server):
        client = ServeClient(port=server.port)
        spec = JobSpec(kind="analyze_symbolic", u=256, p=256, cache=False)
        first = client.run(spec, timeout=60)
        assert first.ok
        submitted = client.submit(spec)
        assert submitted["coalesced"] is True
        again = client.wait(submitted["job_id"], timeout=30)
        assert again.to_payload() == first.to_payload()
        stats = client.stats()["server"]
        assert stats["serve.jobs_submitted"] == 2
        assert stats["serve.jobs_coalesced"] == 1
        assert stats["serve.executions"] == 1

    def test_server_output_matches_direct_dispatch(self, server):
        client = ServeClient(port=server.port)
        spec = JobSpec(kind="analyze_symbolic", u=7, p=5, cache=False)
        served = client.run(spec, timeout=60)
        direct = run_job(spec)
        assert served.ok
        assert _norm(served.output) == _norm(direct.output)


# ---------------------------------------------------------------------------
# The promoted public API and its deprecation shims
# ---------------------------------------------------------------------------

class TestPublicApi:
    def test_four_verbs_exported(self):
        import repro

        assert callable(repro.analyze)
        assert callable(repro.search_designs)
        assert callable(repro.simulate)
        assert callable(repro.verify_run)
        assert callable(repro.analyze_symbolic)

    def test_analyze_symbolic_wrapper(self):
        import repro

        result = repro.analyze_symbolic(u=1024, p=1024, cache=False)
        assert result.ok
        assert result.data["closed_form"] is True
        assert result.data["instances"] > 4_000_000_000_000_000

    def test_simulate_wrapper(self):
        import repro

        result = repro.simulate(u=2, p=2)
        assert result.ok
        assert result.data["correct"] is True

    def test_verify_run_wrapper(self):
        import repro

        result = repro.verify_run(cases=2, budget_s=10.0)
        assert result.ok
        assert result.data["ok"] is True

    def test_deprecated_aliases_warn_and_work(self):
        import importlib

        import repro
        import repro.verify as verify_mod

        for name in ("run_verification", "run_mutation_check"):
            with pytest.warns(DeprecationWarning, match=name):
                shimmed = getattr(importlib.import_module("repro"), name)
            assert shimmed is getattr(verify_mod, name)

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_an_attribute
