"""Tests for symbolic summarization of validity domains."""

import pytest

from repro.depanalysis import analyze
from repro.depanalysis.summarize import (
    candidate_atoms,
    summarize_result,
    summarize_validity,
)
from repro.ir.builders import addshift_pipelined, matmul_pipelined
from repro.ir.expand import expand_bit_level
from repro.structures.conditions import And, Eq, Ne, Or, TRUE
from repro.structures.indexset import IndexSet
from repro.structures.params import S


class TestCandidateAtoms:
    def test_axis_bounds_present(self):
        j = IndexSet([1, 1], [S("p"), S("p")], ("i1", "i2"))
        atoms = candidate_atoms(j, {"p": 3})
        assert Eq(0, 1) in atoms
        assert Eq(0, S("p")) in atoms
        assert Ne(1, 1) in atoms

    def test_degenerate_axis_skipped(self):
        j = IndexSet([1, 1], [1, 5])
        atoms = candidate_atoms(j, {})
        assert all(a.axis != 0 for a in atoms)  # type: ignore[attr-defined]

    def test_second_band_present(self):
        # The paper's "i2 != 1, 2" shape needs an atom at lo + 1.
        j = IndexSet([1], [5])
        atoms = candidate_atoms(j, {})
        assert Ne(0, 2) in atoms


class TestSummarizeValidity:
    J2 = IndexSet([1, 1], [S("p"), S("p")], ("i1", "i2"))
    B = {"p": 4}

    def points(self, pred):
        return [pt for pt in self.J2.points(self.B) if pred(pt)]

    def test_uniform(self):
        cond = summarize_validity(list(self.J2.points(self.B)), self.J2, self.B)
        assert cond == TRUE

    def test_single_eq(self):
        cond = summarize_validity(
            self.points(lambda q: q[0] == 1), self.J2, self.B
        )
        assert cond == Eq(0, 1)

    def test_single_ne(self):
        cond = summarize_validity(
            self.points(lambda q: q[1] != 1), self.J2, self.B
        )
        assert cond == Ne(1, 1)

    def test_boundary_or(self):
        # The paper's q̄₂: i1 = p or i2 = 1.
        cond = summarize_validity(
            self.points(lambda q: q[0] == 4 or q[1] == 1), self.J2, self.B
        )
        assert isinstance(cond, Or)
        for pt in self.J2.points(self.B):
            assert cond.holds(pt, self.B) == (pt[0] == 4 or pt[1] == 1)

    def test_conjunction(self):
        cond = summarize_validity(
            self.points(lambda q: q[0] != 1 and q[1] != 1), self.J2, self.B
        )
        for pt in self.J2.points(self.B):
            assert cond.holds(pt, self.B) == (pt[0] != 1 and pt[1] != 1)

    def test_symbolic_bound_preferred_in_output(self):
        # Against a symbolic upper bound, the summarizer emits Eq(axis, p).
        cond = summarize_validity(
            self.points(lambda q: q[0] == 4), self.J2, self.B
        )
        assert cond == Eq(0, S("p"))

    def test_unsummarizable_returns_none(self):
        # A checkerboard has no small And/Or description.
        pts = self.points(lambda q: (q[0] + q[1]) % 2 == 0)
        assert summarize_validity(pts, self.J2, self.B) is None

    def test_empty_set(self):
        # No point set matches FALSE in the hypothesis space; None is fine,
        # or an unsatisfiable combination -- accept either but require
        # correctness if a condition is returned.
        cond = summarize_validity([], self.J2, self.B)
        if cond is not None:
            assert not any(cond.holds(pt, self.B) for pt in self.J2.points(self.B))


class TestSummarizeResult:
    def test_addshift_recovery(self):
        prog = addshift_pipelined(4)
        res = analyze(prog, {"p": 4}, "enumerate")
        mat = summarize_result(res, prog.index_set, {"p": 4})
        by_vec = {v.vector: v for v in mat}
        # a pipelining: effective where the source row exists.
        assert by_vec[(1, 0)].validity == Ne(0, 1)
        assert by_vec[(0, 1)].validity == Ne(1, 1)

    def test_matmul_recovery(self):
        prog = matmul_pipelined(3)
        res = analyze(prog, {"u": 3}, "enumerate")
        mat = summarize_result(res, prog.index_set, {"u": 3})
        by_vec = {v.vector: v for v in mat}
        assert by_vec[(0, 0, 1)].validity == Ne(2, 1)

    def test_expanded_program_exact_extension(self):
        # Whatever conditions come out, they must describe the observed
        # sink sets exactly.
        prog = expand_bit_level([1], [1], [1], [1], [3], 3, "II")
        binding = {"p": 3, "u": 3}
        res = analyze(prog, {}, "enumerate")
        mat = summarize_result(res, prog.index_set, binding)
        for vec in mat:
            observed = res.sinks_of(vec.vector)
            described = {
                pt for pt in prog.index_set.points({})
                if vec.valid_at(pt, binding)
            }
            assert described == observed, vec

    def test_c2_region_recovered(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 4, "II")
        res = analyze(prog, {}, "enumerate")
        mat = summarize_result(res, prog.index_set, {"p": 4})
        c2 = next(v for v in mat if v.vector == (0, 0, 2))
        # Effective region: i1 = p and i2 >= 3.  At p = 4 the summarizer
        # finds (i1 = 4 and i2 != 1 and i2 != 2).
        assert isinstance(c2.validity, And)
        for pt in prog.index_set.points({}):
            want = pt[1] == 4 and pt[2] >= 3
            assert c2.valid_at(pt, {"p": 4}) == want
