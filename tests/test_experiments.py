"""Integration tests: every experiment harness reproduces its paper claim."""

import pytest

from repro.experiments import (
    e1_addshift,
    e2_expansions,
    e3_matmul_structure,
    e4_fig4,
    e5_fig5,
    e6_speedup,
    e7_analysis_cost,
    e8_wordlevel,
    format_table,
)


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out
        assert "30" in out

    def test_alignment(self):
        out = format_table(["col"], [[1], [100]])
        rows = out.splitlines()
        assert len(rows[1]) == len(rows[2])


class TestE1:
    def test_passes(self):
        data = e1_addshift.run(p_values=(2, 3))
        assert data["ok"]

    def test_report_renders(self):
        assert "ALL CHECKS PASS" in e1_addshift.report(e1_addshift.run((2,)))


class TestE2:
    def test_passes(self):
        data = e2_expansions.run(cases=((3, 2, 1),))
        assert data["ok"]

    def test_report(self):
        assert "D_I" in e2_expansions.report(e2_expansions.run(((3, 2, 1),)))


class TestE3:
    def test_passes(self):
        data = e3_matmul_structure.run(cases=((2, 2),))
        assert data["ok"]
        assert data["symbolic_ok"]
        assert data["index_ok"]


class TestE4:
    def test_passes(self):
        data = e4_fig4.run(cases=((2, 2),), optimality_bound=2)
        assert data["ok"]

    def test_detail_fields(self):
        data = e4_fig4.run(cases=((2, 2),), optimality_bound=2)
        det = data["details"][(2, 2)]
        assert det["feasibility"].feasible
        assert det["best_schedule"][1] == 7


class TestE5:
    def test_passes(self):
        data = e5_fig5.run(cases=((2, 2),))
        assert data["ok"]

    def test_report_mentions_slip(self):
        assert "arithmetic slip" in e5_fig5.report(e5_fig5.run(((2, 2),)))


class TestE6:
    def test_shape_reproduced(self):
        data = e6_speedup.run(u=16, p_values=(2, 4, 8), simulate_up_to=(3, 3))
        assert data["ok"]
        assert data["exp_addshift"] > data["exp_carrysave"]

    def test_fit_exponent(self):
        # Perfect quadratic data fits slope 2.
        assert abs(e6_speedup.fit_exponent([2, 4, 8], [4.0, 16.0, 64.0]) - 2) < 1e-9


class TestE7:
    def test_agreement_and_speed(self):
        data = e7_analysis_cost.run(cases=((2, 2),))
        assert data["ok"]


class TestE8:
    def test_passes(self):
        data = e8_wordlevel.run(u_values=(2, 3))
        assert data["ok"]

    def test_report(self):
        assert "ALL CHECKS PASS" in e8_wordlevel.report(e8_wordlevel.run((2,)))


class TestE9:
    def test_bound_matches(self):
        from repro.experiments import e9_bounds

        data = e9_bounds.run(cases=((2, 2), (3, 2)))
        assert data["ok"]
        assert "absolute minimum" in e9_bounds.report(data)


class TestE10:
    def test_search_reaches_optimum(self):
        from repro.experiments import e10_search

        data = e10_search.run(u=2, p=2, max_candidates=3)
        assert data["ok"]
        assert "OPTIMUM" in e10_search.report(data)


class TestExperimentsCliAll:
    def test_run_all_small(self, capsys):
        # e9/e10 are cheap enough to run through the CLI path.
        from repro.experiments.__main__ import main

        assert main(["e9"]) == 0
