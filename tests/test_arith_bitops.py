"""Tests for repro.arith.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.arith.bitops import (
    carry_bit,
    compress,
    from_bits,
    full_adder,
    sum_bit,
    to_bits,
)


class TestFullAdder:
    def test_truth_table(self):
        # Eq. (3.2): g is majority, f is parity.
        for x1 in (0, 1):
            for x2 in (0, 1):
                for x3 in (0, 1):
                    total = x1 + x2 + x3
                    assert sum_bit(x1, x2, x3) == total & 1
                    assert carry_bit(x1, x2, x3) == (total >> 1) & 1

    def test_full_adder_tuple(self):
        assert full_adder(1, 1, 0) == (0, 1)
        assert full_adder(1, 1, 1) == (1, 1)
        assert full_adder(0, 0, 0) == (0, 0)

    @given(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
    def test_value_conservation(self, a, b, c):
        s, cy = full_adder(a, b, c)
        assert s + 2 * cy == a + b + c


class TestCompress:
    @pytest.mark.parametrize("n", range(8))
    def test_value_conservation(self, n):
        bits = [1] * n + [0] * (7 - n)
        s, c, c2 = compress(bits)
        assert s + 2 * c + 4 * c2 == n

    def test_empty(self):
        assert compress([]) == (0, 0, 0)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            compress([1] * 8)

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            compress([2])


class TestBitCodec:
    def test_to_bits_little_endian(self):
        assert to_bits(6, 4) == [0, 1, 1, 0]

    def test_from_bits(self):
        assert from_bits([0, 1, 1, 0]) == 6

    def test_to_bits_overflow(self):
        with pytest.raises(ValueError):
            to_bits(16, 4)

    def test_to_bits_negative(self):
        with pytest.raises(ValueError):
            to_bits(-1, 4)

    def test_from_bits_non_bit(self):
        with pytest.raises(ValueError):
            from_bits([0, 2])

    def test_zero_width(self):
        assert to_bits(0, 0) == []
        assert from_bits([]) == 0

    @given(st.integers(0, 2**16 - 1))
    def test_roundtrip(self, v):
        assert from_bits(to_bits(v, 16)) == v

    @given(st.lists(st.integers(0, 1), max_size=20))
    def test_roundtrip_reverse(self, bits):
        assert to_bits(from_bits(bits), len(bits) + 1)[: len(bits)] == bits
