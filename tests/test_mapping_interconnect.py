"""Tests for the S·D = P·K factorization and primitive matrices."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.mapping.designs import (
    fig4_k_paper,
    fig4_mapping,
    fig4_primitives,
    fig5_mapping,
    fig5_primitives,
)
from repro.mapping.interconnect import (
    mesh_primitives,
    solve_interconnect,
    with_long_wires,
)
from repro.util.linalg import mat_mul


def matmul_D(u=3, p=3):
    alg = matmul_bit_level(u, p, "II")
    cols = alg.dependences.columns()
    return [[c[r] for c in cols] for r in range(5)], alg


class TestPrimitiveMatrices:
    def test_mesh_2d(self):
        p = mesh_primitives(2)
        cols = {tuple(p[r][j] for r in range(2)) for j in range(4)}
        assert cols == {(1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_mesh_1d(self):
        p = mesh_primitives(1)
        assert p == [[1, -1]]

    def test_with_long_wires(self):
        p = with_long_wires([[5, 0]])
        assert len(p[0]) == 5
        assert (p[0][4], p[1][4]) == (5, 0)

    def test_long_wire_dim_mismatch(self):
        with pytest.raises(ValueError):
            with_long_wires([[5]])


class TestSolveInterconnect:
    def test_fig4_solution(self):
        d, _ = matmul_D(3, 3)
        t = fig4_mapping(3)
        sol = solve_interconnect(t.space, d, t.schedule, fig4_primitives(3))
        assert sol is not None
        assert sol.verify(t.space, d)
        # d̄₄ column: one hop, deadline 2 -> one buffer.
        i_d4 = next(
            i for i in range(7)
            if [d[r][i] for r in range(5)] == [0, 0, 0, 1, 0]
        )
        assert sol.hops[i_d4] == 1
        assert sol.deadlines[i_d4] == 2
        assert sol.buffers[i_d4] == 1

    def test_fig5_solution_unit_wires(self):
        d, _ = matmul_D(3, 3)
        t = fig5_mapping(3)
        sol = solve_interconnect(t.space, d, t.schedule, fig5_primitives())
        assert sol is not None
        assert sol.verify(t.space, d)
        # Word pipelining now takes p mesh hops.
        i_d1 = next(
            i for i in range(7)
            if [d[r][i] for r in range(5)] == [1, 0, 0, 0, 0]
        )
        assert sol.hops[i_d1] == 3

    def test_fig4_infeasible_on_pure_mesh(self):
        # Without the long wires, d̄₁ needs p hops in 1 time unit.
        d, _ = matmul_D(3, 3)
        t = fig4_mapping(3)
        sol = solve_interconnect(t.space, d, t.schedule, mesh_primitives(2))
        assert sol is None

    def test_paper_k_matrix_verifies(self):
        # The literal K of (4.3) against the paper-ordered D.
        from repro.experiments.e4_fig4 import paper_order_D

        _, alg = matmul_D(3, 3)
        d = paper_order_D(alg)
        t = fig4_mapping(3)
        k = fig4_k_paper()
        assert mat_mul(t.space, d) == mat_mul(fig4_primitives(3), k)
        for i in range(7):
            hops = sum(k[j][i] for j in range(6))
            deadline = sum(t.schedule[r] * d[r][i] for r in range(5))
            assert hops <= deadline

    def test_zero_displacement_zero_hops(self):
        # Stationary data (S·d = 0) needs no hops.
        sol = solve_interconnect(
            [[1, 0]], [[0], [0]], [0, 1], mesh_primitives(1)
        )
        assert sol is not None
        assert sol.hops == [0]

    def test_deadline_violation_returns_none(self):
        # Displacement (2, 0) with deadline 1 on a unit mesh: impossible.
        sol = solve_interconnect(
            [[1, 0], [0, 1]],
            [[2], [0]],
            [0, 1],  # Π d = 0·2 + 1·0 ... deadline computed from schedule
            mesh_primitives(2),
        )
        # Π·d = 0, so even zero hops cannot be "before" -- target (2,0)
        # unreachable within 0 hops.
        assert sol is None

    def test_minimal_hops_preferred(self):
        # Target (1, 0) with generous deadline: the solver picks 1 hop,
        # not a 3-hop detour.
        sol = solve_interconnect(
            [[1, 0], [0, 1]], [[1], [0]], [5, 5], mesh_primitives(2)
        )
        assert sol is not None
        assert sol.hops == [1]
