"""Regression + cross-check tests: lattice conflict mode vs. pair enumeration.

The verification oracles surfaced a real bug here: interval constraint
propagation in :func:`repro.depanalysis.diophantine.bounded_lattice_points`
stalls whenever every box row couples two or more still-unbounded lattice
coordinates (it can only tighten a variable once the others are bounded).
The old code then raised ``UnboundedLatticeError`` and ``find_conflicts``
"recovered" by returning the raw nullspace basis -- reporting conflicts
for mappings that are actually injective on the index set.  The fix
computes explicit algebraic bounds from an invertible row submatrix, which
always exist because a linearly independent basis confined to a bounded
box yields a bounded coefficient polytope.
"""

import random

from repro.depanalysis.diophantine import bounded_lattice_points
from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import lu_word_structure
from repro.mapping.conflicts import enumerate_conflict_pairs, find_conflicts
from repro.mapping.transform import MappingMatrix

# The shrunken counterexample the mapping oracle produced (seed 6): a rank-3
# mapping of the u=2, p=2 bit-level matmul lattice whose nullspace basis is
# too skewed for interval propagation to bound.
REGRESSION_ROWS = [[-2, 1, 2, 0, 2], [-2, 0, 1, 1, 0], [-1, 1, -2, 1, -2]]


def test_regression_skewed_nullspace_is_conflict_free():
    alg = matmul_bit_level(2, 2, "II")
    binding = {"u": 2, "p": 2}
    t = MappingMatrix(REGRESSION_ROWS)
    directions = find_conflicts(t, alg.index_set, binding)
    pairs = enumerate_conflict_pairs(t, alg.index_set, binding, limit=None)
    assert pairs == [], "ground truth: no two points share (processor, time)"
    assert directions == [], (
        "lattice mode must agree with exhaustive pair enumeration"
    )


def test_regression_lattice_enumeration_does_not_raise():
    # The raw sub-problem behind the regression: both propagation rows
    # couple both lattice coordinates, so _tighten alone bounds nothing.
    basis = [[-4, -10, -16, 8, 17], [-3, -8, -13, 7, 14]]
    box = [(-1, 1)] * 5
    points = list(bounded_lattice_points([0] * 5, basis, box))
    assert points == [[0, 0, 0, 0, 0]]


def test_algebraic_bounds_still_enumerate_nonzero_hits():
    # A coupled basis whose small combinations do fit the box: t0*[1,2] +
    # t1*[2,1] stays within [-3,3]^2 for nine (t0, t1) pairs around zero.
    basis = [[1, 2], [2, 1]]
    box = [(-3, 3), (-3, 3)]
    points = sorted(tuple(p) for p in bounded_lattice_points([0, 0], basis, box))
    expected = sorted(
        (a * basis[0][0] + b * basis[1][0], a * basis[0][1] + b * basis[1][1])
        for a in range(-4, 5)
        for b in range(-4, 5)
        if all(
            -3 <= a * basis[0][i] + b * basis[1][i] <= 3 for i in range(2)
        )
    )
    assert points == expected
    assert len(points) > 1


def test_random_box_mappings_agree_with_pair_enumeration():
    rng = random.Random(0xC0FFEE)
    alg = matmul_bit_level(2, 2, "II")
    binding = {"u": 2, "p": 2}
    for _ in range(60):
        k = rng.randint(2, 3)
        rows = [
            [rng.randint(-2, 2) for _ in range(5)] for _ in range(k)
        ]
        t = MappingMatrix(rows)
        lattice_says = bool(find_conflicts(t, alg.index_set, binding, limit=1))
        pairs_say = bool(
            enumerate_conflict_pairs(t, alg.index_set, binding, limit=1)
        )
        assert lattice_says == pairs_say, (rows, lattice_says, pairs_say)


def test_constrained_sets_use_exact_pairs():
    # LU's triangular index set is affine-constrained: find_conflicts must
    # dispatch to pair enumeration and agree with it trivially.
    alg = lu_word_structure(3)
    binding = {"n": 3}
    assert getattr(alg.index_set, "is_constrained", False)
    t = MappingMatrix([[1, 0, 0], [1, 1, 1]])
    got = find_conflicts(t, alg.index_set, binding, limit=3)
    want = enumerate_conflict_pairs(t, alg.index_set, binding, limit=3)
    assert got == want
