"""Differential backend-equivalence suite: wavefront vs pointwise.

The wavefront engine is only a speedup if it is *undetectable*: same
product, same :class:`~repro.machine.simulator.SimulationResult`, same
store contents, same ``machine.*`` metric values.  This module pins that
down across

* the bit-level matmul machine (both designs x both expansions, with and
  without the vectorized slot kernel);
* every registered arithmetic structure, each exercised on the machine
  path that executes it;
* the generic model-(3.5) machine (the compatibility shim);
* >= 20 seeded random feasible mappings drawn from
  :mod:`repro.verify.generator`.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.arith.baughwooley import BaughWooleyMultiplier
from repro.arith.registry import list_structures
from repro.machine import bitlevel as bitlevel_mod
from repro.machine import wordlevel as wordlevel_mod
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.model import BitLevelModelMachine
from repro.machine.signed import signed_matmul
from repro.machine.simulator import SpaceTimeSimulator
from repro.machine.wordlevel import WordLevelMatmulMachine
from repro.mapping import check_feasibility, designs
from repro.mapping.transform import MappingMatrix
from repro.verify.generator import gen_mapping_case
from tests.conftest import random_matrix, reference_matmul

BACKENDS = ("pointwise", "wavefront")


# ---------------------------------------------------------------------------
# Capture plumbing: the machines build their simulator internally, so the
# store snapshots are grabbed by substituting a recording subclass.
# ---------------------------------------------------------------------------

class _CaptureSimulator(SpaceTimeSimulator):
    instances: list[SpaceTimeSimulator] = []

    def run(self, compute, kernel=None):
        type(self).instances.append(self)
        return super().run(compute, kernel)


@pytest.fixture
def capture(monkeypatch):
    """Patch the machine modules to record every simulator they build."""
    _CaptureSimulator.instances = []
    monkeypatch.setattr(bitlevel_mod, "SpaceTimeSimulator", _CaptureSimulator)
    monkeypatch.setattr(wordlevel_mod, "SpaceTimeSimulator", _CaptureSimulator)
    return _CaptureSimulator.instances


def _observed(fn):
    """Run ``fn`` under a fresh obs registry; return (result, metrics)."""
    with obs.collecting() as reg:
        out = fn()
    return out, obs.metrics_dict(reg)


def _assert_runs_match(runs, label):
    """``runs[backend] = (sim_result, store_snapshot, metrics, firings)``."""
    pw, wf = runs["pointwise"], runs["wavefront"]
    assert pw[0] == wf[0], f"{label}: SimulationResult diverged"
    assert pw[1] == wf[1], f"{label}: store contents diverged"
    assert pw[2]["counters"] == wf[2]["counters"], f"{label}: counters diverged"
    assert pw[2]["gauges"] == wf[2]["gauges"], f"{label}: gauges diverged"
    assert pw[3] == wf[3], f"{label}: PE firing records diverged"


def _firings(sim):
    return {pos: dict(pe.firings) for pos, pe in sim.pes.items()}


# ---------------------------------------------------------------------------
# Bit-level matmul machine: designs x expansions (kernel path vs reference)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("design", ["fig4", "fig5"])
@pytest.mark.parametrize("expansion", ["I", "II"])
def test_bitlevel_machine_equivalence(design, expansion, capture, rng):
    u = p = 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    mapping = (
        designs.fig5_mapping(p) if design == "fig5" else designs.fig4_mapping(p)
    )
    runs = {}
    products = {}
    for backend in BACKENDS:
        machine = BitLevelMatmulMachine(u, p, mapping, expansion, backend=backend)
        out, metrics = _observed(lambda: machine.run(x, y))
        sim = capture[-1]
        runs[backend] = (out.sim, sim.store.snapshot(), metrics, _firings(sim))
        products[backend] = out.product
    mask = (1 << (2 * p - 1)) - 1
    assert products["pointwise"] == products["wavefront"]
    assert products["wavefront"] == reference_matmul(x, y, mask)
    _assert_runs_match(runs, f"bitlevel {design}/exp {expansion}")


def test_bitlevel_kernel_and_shim_agree(rng):
    """Same backend, kernel gated off: the generic shim must also match."""
    u = p = 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)

    import repro.machine.wavefront as wavefront_mod

    def run_once():
        machine = BitLevelMatmulMachine(
            u, p, designs.fig4_mapping(p), "II", backend="wavefront"
        )
        return _observed(lambda: machine.run(x, y))

    out_kernel, m_kernel = run_once()
    # Disabling the numpy gate forces the per-point compute through the
    # wavefront shim; results and metrics must not move.
    have_numpy, wavefront_mod.HAVE_NUMPY = wavefront_mod.HAVE_NUMPY, False
    try:
        out_shim, m_shim = run_once()
    finally:
        wavefront_mod.HAVE_NUMPY = have_numpy
    assert out_kernel.product == out_shim.product
    assert out_kernel.sim == out_shim.sim
    assert m_kernel["counters"] == m_shim["counters"]
    assert m_kernel["gauges"] == m_shim["gauges"]


# ---------------------------------------------------------------------------
# Every registered arithmetic structure
# ---------------------------------------------------------------------------

def _run_addshift(backend, rng):
    u, p = 3, 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    machine = BitLevelMatmulMachine(
        u, p, designs.fig4_mapping(p), "II", backend=backend
    )
    out, metrics = _observed(lambda: machine.run(x, y))
    return (out.product, out.sim), metrics


def _run_carrysave(backend, rng):
    u, p = 4, 3
    x, y = random_matrix(rng, u, p), random_matrix(rng, u, p)
    machine = WordLevelMatmulMachine(u, p, "carry-save", backend=backend)
    out, metrics = _observed(lambda: machine.run(x, y))
    assert out.product == reference_matmul(x, y)
    return (out.product, out.total_cycles, out.sim), metrics


def _run_baughwooley(backend, rng):
    # Baugh-Wooley is the signed-operand path: the coefficient-split driver
    # over the bit-level machine, cross-checked against the combinational
    # multiplier on every product term.
    u, p = 2, 4
    half = 1 << (p - 1)
    x = [[rng.randint(-half, half - 1) for _ in range(u)] for _ in range(u)]
    y = [[rng.randrange(half // u) for _ in range(u)] for _ in range(u)]
    machine = BitLevelMatmulMachine(
        u, p, designs.fig4_mapping(p), "II", backend=backend
    )
    modulus = 1 << (2 * p - 1)
    out, metrics = _observed(
        lambda: signed_matmul(
            lambda a, b: machine.run(a, b).product, x, y, modulus
        )
    )
    bw = BaughWooleyMultiplier(p)
    ref = [
        [sum(bw.multiply(x[i][k], y[k][j]) for k in range(u)) for j in range(u)]
        for i in range(u)
    ]
    assert out == ref
    return out, metrics


_ARITH_RUNNERS = {
    "add-shift": _run_addshift,
    "carry-save": _run_carrysave,
    "baugh-wooley": _run_baughwooley,
}


@pytest.mark.parametrize("arith", list_structures())
def test_registered_arithmetic_equivalence(arith):
    runner = _ARITH_RUNNERS.get(arith)
    if runner is None:
        pytest.fail(
            f"arithmetic structure {arith!r} has no backend-equivalence "
            f"runner; extend _ARITH_RUNNERS"
        )
    results = {}
    for backend in BACKENDS:
        results[backend] = runner(backend, random.Random(0xA1))
    out_pw, m_pw = results["pointwise"]
    out_wf, m_wf = results["wavefront"]
    assert out_pw == out_wf, f"{arith}: results diverged across backends"
    assert m_pw["counters"] == m_wf["counters"], f"{arith}: counters diverged"
    assert m_pw["gauges"] == m_wf["gauges"], f"{arith}: gauges diverged"


# ---------------------------------------------------------------------------
# Generic model-(3.5) machine (convolution mapping -> compatibility shim)
# ---------------------------------------------------------------------------

CONV_T = MappingMatrix([[3, 0, 1, 0], [0, 0, 0, 1], [2, 1, 2, 1]], "T-conv")


@pytest.mark.parametrize("expansion", ["I", "II"])
def test_model_machine_equivalence(expansion, rng):
    n_pts, taps, p = 4, 3, 3
    w = [rng.randrange(1 << p) for _ in range(taps)]
    sig = [rng.randrange(1 << p) for _ in range(n_pts + taps - 1)]
    xw, yw = {}, {}
    for j1 in range(1, n_pts + 1):
        for j2 in range(1, taps + 1):
            xw[(j1, j2)] = w[j2 - 1]
            yw[(j1, j2)] = sig[j1 + j2 - 2]
    runs = {}
    outputs = {}
    for backend in BACKENDS:
        machine = BitLevelModelMachine(
            [1, 0], [1, -1], [0, 1], [1, 1], [n_pts, taps], p, CONV_T,
            expansion, backend=backend,
        )
        out, metrics = _observed(lambda: machine.run(xw, yw))
        runs[backend] = (out.sim, None, metrics, None)
        outputs[backend] = (out.z_words, out.outputs, out.dropped_bits)
        assert out.outputs == machine.reference(xw, yw)
    assert outputs["pointwise"] == outputs["wavefront"]
    pw, wf = runs["pointwise"], runs["wavefront"]
    assert pw[0] == wf[0]
    assert pw[2]["counters"] == wf[2]["counters"]
    assert pw[2]["gauges"] == wf[2]["gauges"]


# ---------------------------------------------------------------------------
# Random feasible mappings from the verification generator
# ---------------------------------------------------------------------------

N_RANDOM_MAPPINGS = 20


def _feasible_cases(seed, count, max_attempts=400):
    """Draw generator mapping cases until ``count`` are feasible."""
    rng = random.Random(seed)
    out = []
    for _ in range(max_attempts):
        if len(out) >= count:
            break
        case = gen_mapping_case(rng)
        try:
            alg, binding, t, prims = case.build()
            rep = check_feasibility(t, alg, binding, prims)
        except Exception:
            continue
        if rep.feasible:
            out.append((case, alg, binding, t))
    return out


def _generic_compute(alg, binding):
    """A deterministic per-point computation exercising every dependence:
    read each (valid) source along its cause variables, fold, write every
    cause variable once at the firing point."""
    deps = list(alg.dependences)

    def compute(q, store):
        total = sum((i + 1) * v for i, v in enumerate(q)) % 17
        written = []
        for k, dep in enumerate(deps):
            causes = dep.causes or (f"d{k}",)
            for var in causes:
                if var not in written:
                    written.append(var)
            if not dep.valid_at(q, binding):
                continue
            src = tuple(a - b for a, b in zip(q, dep.vector))
            for var in causes:
                total += store.get(var, src, 0)
        for var in written:
            store.put(var, q, total % 251)

    return compute


def test_random_feasible_mappings_equivalent():
    cases = _feasible_cases(seed=42, count=N_RANDOM_MAPPINGS)
    assert len(cases) >= N_RANDOM_MAPPINGS, (
        f"generator produced only {len(cases)} feasible mappings; "
        f"loosen the draw budget"
    )
    for case, alg, binding, t in cases:
        runs = {}
        for backend in BACKENDS:
            compute = _generic_compute(alg, binding)
            with obs.collecting() as reg:
                sim = SpaceTimeSimulator(t, alg, binding, backend=backend)
                result = sim.run(compute)
            runs[backend] = (
                result,
                sim.store.snapshot(),
                obs.metrics_dict(reg),
                _firings(sim),
            )
        _assert_runs_match(runs, f"{case.kind} mapping {t.rows}")


def test_random_mapping_count_is_at_least_twenty():
    """Guard: the suite's random sweep keeps covering >= 20 mappings."""
    assert N_RANDOM_MAPPINGS >= 20
