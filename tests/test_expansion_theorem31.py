"""Tests for Theorem 3.1's compositional construction."""

import pytest

from repro.expansion.expansions import EXPANSION_I, EXPANSION_II, get_expansion
from repro.expansion.theorem31 import (
    bit_level_from_vectors,
    bit_level_structure,
    matmul_bit_level,
)
from repro.experiments.e3_matmul_structure import paper_312_columns
from repro.ir.builders import (
    convolution_word_structure,
    matmul_word_structure,
    word_model_structure,
)
from repro.structures.algorithm import Algorithm
from repro.structures.conditions import And, Eq, Ne, Or, TRUE
from repro.structures.dependence import DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import S


class TestMatmulStructure:
    """Example 3.1: eqs. (3.12)/(3.13)."""

    def test_symbolic_matches_paper(self):
        alg = matmul_bit_level()
        derived = {
            (v.vector, frozenset(v.causes), v.validity)
            for v in alg.dependences
        }
        paper = set(paper_312_columns("II"))
        assert derived == paper

    def test_index_set_313(self):
        alg = matmul_bit_level()
        assert alg.dim == 5
        assert alg.index_set.uppers == (S("u"),) * 3 + (S("p"),) * 2

    def test_expansion1_conditions(self):
        alg = matmul_bit_level(expansion="I")
        derived = {
            (v.vector, frozenset(v.causes), v.validity)
            for v in alg.dependences
        }
        assert derived == set(paper_312_columns("I"))

    def test_seven_columns(self):
        assert len(matmul_bit_level().dependences) == 7

    def test_d5_merges_y_and_c(self):
        alg = matmul_bit_level()
        d5 = [v for v in alg.dependences if v.vector == (0, 0, 0, 0, 1)]
        assert len(d5) == 1
        assert set(d5[0].causes) == {"c", "y"}

    def test_concrete_instantiation(self):
        alg = matmul_bit_level(3, 2)
        assert alg.index_set.size({"u": 3, "p": 2}) == 27 * 4


class TestGenericComposition:
    def test_one_dimensional_model(self):
        alg = bit_level_from_vectors([1], [1], [1], [1], [4], expansion="I")
        # With h1 = h2 = h3, the three word columns merge pairwise only when
        # their validity coincides -- here they differ, so 7 stays 7... but
        # d̄₁/d̄₂/d̄₃ share the vector (1,0,0) with different validity.
        vectors = [v.vector for v in alg.dependences]
        assert vectors.count((1, 0, 0)) == 3

    def test_convolution(self):
        alg = bit_level_structure(
            convolution_word_structure(5, 3), "add-shift", "II", S("p")
        )
        assert alg.dim == 4
        by_vec = {(v.vector, v.validity) for v in alg.dependences}
        # Word vectors suffixed with zeros.
        assert ((1, 0, 0, 0), Eq(2, 1)) in by_vec  # x at i1=1
        assert ((1, -1, 0, 0), Eq(3, 1)) in by_vec  # y at i2=1

    def test_carrysave_arithmetic(self):
        alg = bit_level_structure(
            matmul_word_structure(), "carry-save", "II"
        )
        # Carry direction [1,0] merges with the a-pipelining direction d̄₄.
        d4 = [v for v in alg.dependences if v.vector == (0, 0, 0, 1, 0)]
        assert len(d4) == 1
        assert set(d4[0].causes) == {"c", "x"}
        # Second carry direction is [2, 0].
        assert any(v.vector == (0, 0, 0, 2, 0) for v in alg.dependences)

    def test_expansion_descriptor_accepted(self):
        alg1 = bit_level_structure(matmul_word_structure(), expansion=EXPANSION_I)
        alg2 = bit_level_structure(matmul_word_structure(), expansion="I")
        assert {v.vector for v in alg1.dependences} == {
            v.vector for v in alg2.dependences
        }

    def test_collapse_region_expansion1(self):
        # d̄₆ valid only at j_n = u_n (the innermost word axis).
        alg = matmul_bit_level(expansion="I")
        d6 = next(v for v in alg.dependences if v.vector == (0, 0, 0, 1, -1))
        assert d6.validity == Eq(2, S("u"))

    def test_d7_region_expansion2(self):
        alg = matmul_bit_level(expansion="II")
        d7 = next(v for v in alg.dependences if v.vector == (0, 0, 0, 0, 2))
        assert d7.validity == Eq(3, S("p"))


class TestInputValidation:
    def test_missing_cause_rejected(self):
        word = Algorithm(
            IndexSet.cube(2, 3),
            [DependenceVector([1, 0], ("x",)), DependenceVector([0, 1], ("y",))],
        )
        with pytest.raises(ValueError):
            bit_level_structure(word)

    def test_duplicate_cause_rejected(self):
        word = Algorithm(
            IndexSet.cube(1, 3),
            [
                DependenceVector([1], ("x",)),
                DependenceVector([2], ("x",)),
                DependenceVector([1], ("y",)),
                DependenceVector([1], ("z",)),
            ],
        )
        with pytest.raises(ValueError):
            bit_level_structure(word)

    def test_non_uniform_word_rejected(self):
        word = Algorithm(
            IndexSet.cube(1, 3),
            [
                DependenceVector([1], ("x",), Eq(0, 1)),
                DependenceVector([1], ("y",)),
                DependenceVector([1], ("z",)),
            ],
        )
        with pytest.raises(ValueError):
            bit_level_structure(word)

    def test_unknown_expansion(self):
        with pytest.raises(ValueError):
            get_expansion("IV")


class TestExpansionDescriptors:
    def test_keys(self):
        assert EXPANSION_I.key == "I"
        assert EXPANSION_II.key == "II"

    def test_get_by_key(self):
        assert get_expansion("I") is EXPANSION_I
        assert get_expansion(EXPANSION_II) is EXPANSION_II

    def test_qualitative_fields(self):
        assert "partial-sum" in EXPANSION_I.title
        assert "i1 = p" in EXPANSION_II.carry2_region
