"""Tier-1 checks for the differential verification subsystem.

Each oracle runs at a small fixed budget with a fixed seed -- fully
deterministic -- plus the subsystem's own soundness checks: the seeded
mutation must be caught, shrinking must actually minimize, reports must
round-trip through JSON, and the CLI must wire it all together.
"""

import json
import random
from dataclasses import dataclass, replace

import pytest

from repro.verify import (
    ORACLES,
    VerifyConfig,
    run_mutation_check,
    run_verification,
    shrink,
)
from repro.verify.generator import (
    SizeEnvelope,
    gen_mapping_case,
    gen_simulator_case,
    gen_theorem31_case,
    lex_positive,
)

SMALL = VerifyConfig(seed=0, cases=8)


@pytest.mark.parametrize("oracle", sorted(ORACLES))
def test_oracle_passes_at_small_budget(oracle):
    report = run_verification(replace(SMALL, oracles=(oracle,)))
    assert report.ok, report.summary()
    (outcome,) = report.outcomes
    assert outcome.cases_run == SMALL.cases
    assert outcome.passed == SMALL.cases


def test_run_is_deterministic_for_a_seed():
    def stable(report):
        d = report.to_dict()
        for outcome in d["outcomes"]:
            outcome.pop("elapsed_s")
        return d

    assert stable(run_verification(SMALL)) == stable(run_verification(SMALL))


def test_unknown_oracle_rejected():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_verification(replace(SMALL, oracles=("nonesuch",)))


def test_budget_cuts_the_loop_short():
    report = run_verification(
        VerifyConfig(seed=0, cases=10_000, budget_s=0.0, oracles=("mapping",))
    )
    (outcome,) = report.outcomes
    assert outcome.budget_exhausted
    assert outcome.cases_run < 10_000


def test_generators_are_seed_deterministic():
    for gen in (gen_theorem31_case, gen_mapping_case, gen_simulator_case):
        env = SizeEnvelope()
        assert gen(random.Random(7), env) == gen(random.Random(7), env)


def test_generated_word_vectors_are_lex_positive():
    rng = random.Random(3)
    for _ in range(50):
        case = gen_theorem31_case(rng)
        assert lex_positive(case.h1) and lex_positive(case.h2) and lex_positive(case.h3)
        assert all(lo <= hi for lo, hi in zip(case.lowers, case.uppers))


def test_mutation_check_catches_seeded_bug():
    counterexample = run_mutation_check(seed=0, cases=30)
    assert counterexample is not None, (
        "the seeded c' validity bug must produce a counterexample"
    )
    assert counterexample.oracle == "theorem31"
    # The mutation (c' column valid everywhere) is extensionally visible
    # only once the c' source lands inside the index set, i.e. at p >= 3;
    # a sound shrinker therefore must NOT reduce p below 3.
    assert counterexample.case["p"] == 3
    assert "MISMATCH" in counterexample.detail


def test_mutation_counterexample_is_shrunken():
    counterexample = run_mutation_check(seed=0, cases=30)
    assert counterexample is not None
    assert counterexample.shrink_steps > 0
    # Shrinking must have reduced the index-set volume (or kept it minimal).
    def volume(case):
        out = 1
        for lo, hi in zip(case["lowers"], case["uppers"]):
            out *= hi - lo + 1
        return out

    assert volume(counterexample.case) <= volume(counterexample.original)


def test_report_json_roundtrip(tmp_path):
    report = run_verification(SMALL)
    path = tmp_path / "verify.json"
    report.write(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == report.to_dict()
    assert loaded["ok"] is True
    assert {o["oracle"] for o in loaded["outcomes"]} == set(SMALL.oracles)


def test_shrink_minimizes_generic_case():
    @dataclass(frozen=True)
    class Pair:
        a: int
        b: int

        def shrink_candidates(self):
            if self.a > 0:
                yield Pair(self.a - 1, self.b)
            if self.b > 0:
                yield Pair(self.a, self.b - 1)

    # Failure condition: a >= 3. Minimal failing case is (3, 0).
    small, steps = shrink(Pair(9, 5), lambda c: c.a >= 3)
    assert small == Pair(3, 0)
    assert steps == (9 - 3) + 5


def test_shrink_treats_raising_candidates_as_passing():
    @dataclass(frozen=True)
    class Fragile:
        n: int

        def shrink_candidates(self):
            if self.n > 0:
                yield Fragile(self.n - 1)

    def fails(case):
        if case.n == 2:
            raise RuntimeError("checker blew up")
        return case.n >= 1

    small, _ = shrink(Fragile(4), fails)
    # n=2 raises, so the greedy path 4 -> 3 stops there: 3's only candidate
    # (2) raises and is treated as not failing.
    assert small == Fragile(3)


def test_verify_cli_smoke(capsys):
    from repro.__main__ import main

    rc = main(["verify", "--seed", "0", "--cases", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all oracles agree" in out


def test_verify_cli_report_and_oracle_selection(tmp_path, capsys):
    from repro.__main__ import main

    path = tmp_path / "r.json"
    rc = main([
        "verify", "--seed", "1", "--cases", "4",
        "--oracle", "simulator", "--report", str(path),
    ])
    assert rc == 0
    data = json.loads(path.read_text())
    assert [o["oracle"] for o in data["outcomes"]] == ["simulator"]
    assert "report written" in capsys.readouterr().out


def test_verify_cli_mutation_check(capsys):
    from repro.__main__ import main

    rc = main(["verify", "--mutation-check", "--cases", "30"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "mutation check ok" in out


def test_verify_emits_obs_counters():
    from repro import obs

    with obs.collecting() as reg:
        run_verification(replace(SMALL, oracles=("theorem31",)))
        metrics = obs.metrics_dict(reg)
    assert metrics["counters"]["verify.theorem31.cases"] == SMALL.cases
    assert "verify.theorem31" in metrics["spans"]
