"""Tests for repro.util.intmath."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.intmath import (
    ceil_div,
    egcd,
    floor_div,
    gcd_list,
    lcm,
    lcm_list,
    sign,
    solve_linear_diophantine_eq,
)

ints = st.integers(min_value=-10**6, max_value=10**6)
small_ints = st.integers(min_value=-50, max_value=50)


class TestSign:
    def test_positive(self):
        assert sign(7) == 1

    def test_negative(self):
        assert sign(-3) == -1

    def test_zero(self):
        assert sign(0) == 0


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(12, 30)
        assert g == 6
        assert 12 * x + 30 * y == 6

    def test_coprime(self):
        g, x, y = egcd(7, 13)
        assert g == 1
        assert 7 * x + 13 * y == 1

    def test_zero_left(self):
        assert egcd(0, 5)[0] == 5

    def test_zero_right(self):
        assert egcd(5, 0)[0] == 5

    def test_both_zero(self):
        assert egcd(0, 0)[0] == 0

    def test_negative_inputs(self):
        g, x, y = egcd(-12, 30)
        assert g == 6
        assert -12 * x + 30 * y == 6

    @given(ints, ints)
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestGcdLcm:
    def test_gcd_list(self):
        assert gcd_list([12, 18, 24]) == 6

    def test_gcd_list_empty(self):
        assert gcd_list([]) == 0

    def test_gcd_list_zeros(self):
        assert gcd_list([0, 0]) == 0

    def test_gcd_list_with_negative(self):
        assert gcd_list([-4, 6]) == 2

    def test_lcm(self):
        assert lcm(4, 6) == 12

    def test_lcm_zero(self):
        assert lcm(0, 5) == 0

    def test_lcm_list(self):
        assert lcm_list([2, 3, 4]) == 12

    def test_lcm_list_empty(self):
        assert lcm_list([]) == 1

    @given(st.integers(1, 1000), st.integers(1, 1000))
    def test_lcm_gcd_product(self, a, b):
        assert lcm(a, b) * math.gcd(a, b) == a * b


class TestDivision:
    @given(ints, ints.filter(lambda x: x != 0))
    def test_floor_div_matches_float(self, a, b):
        assert floor_div(a, b) == math.floor(a / b)

    @given(ints, ints.filter(lambda x: x != 0))
    def test_ceil_div_matches_float(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)

    def test_ceil_div_exact(self):
        assert ceil_div(6, 3) == 2

    def test_ceil_div_remainder(self):
        assert ceil_div(7, 3) == 3

    def test_ceil_div_negative(self):
        assert ceil_div(-7, 3) == -2


class TestSolveLinearDiophantine:
    def test_simple(self):
        sol = solve_linear_diophantine_eq([2, 3], 7)
        assert sol is not None
        particular, basis = sol
        assert 2 * particular[0] + 3 * particular[1] == 7
        assert len(basis) == 1
        for vec in basis:
            assert 2 * vec[0] + 3 * vec[1] == 0

    def test_no_solution(self):
        assert solve_linear_diophantine_eq([2, 4], 7) is None

    def test_single_variable(self):
        sol = solve_linear_diophantine_eq([5], 15)
        assert sol is not None
        assert sol[0] == [3]
        assert sol[1] == []

    def test_single_variable_infeasible(self):
        assert solve_linear_diophantine_eq([5], 7) is None

    def test_empty(self):
        assert solve_linear_diophantine_eq([], 0) == ([], [])

    def test_empty_infeasible(self):
        assert solve_linear_diophantine_eq([], 3) is None

    def test_all_zero_coeffs_feasible(self):
        sol = solve_linear_diophantine_eq([0, 0], 0)
        assert sol is not None
        particular, basis = sol
        assert particular == [0, 0]
        assert len(basis) == 2  # every point solves it

    def test_all_zero_coeffs_infeasible(self):
        assert solve_linear_diophantine_eq([0, 0], 1) is None

    def test_zero_coefficient_mixed(self):
        sol = solve_linear_diophantine_eq([0, 3], 9)
        assert sol is not None
        particular, basis = sol
        assert 3 * particular[1] == 9
        # x_0 is free
        assert any(vec[0] != 0 for vec in basis)

    @given(
        st.lists(small_ints, min_size=1, max_size=5),
        st.integers(-100, 100),
    )
    def test_solutions_satisfy_equation(self, coeffs, rhs):
        sol = solve_linear_diophantine_eq(coeffs, rhs)
        g = gcd_list(coeffs)
        if sol is None:
            if g != 0:
                assert rhs % g != 0
            else:
                assert rhs != 0
            return
        particular, basis = sol
        assert sum(c * x for c, x in zip(coeffs, particular)) == rhs
        for vec in basis:
            assert sum(c * x for c, x in zip(coeffs, vec)) == 0
        # Lattice rank: n - 1 free directions when some coeff is nonzero.
        nonzero = any(coeffs)
        expected = len(coeffs) - (1 if nonzero else 0)
        assert len(basis) == expected

    @given(
        st.lists(small_ints, min_size=1, max_size=4),
        st.integers(-30, 30),
        st.lists(st.integers(-3, 3), min_size=4, max_size=4),
    )
    def test_lattice_generates_solutions(self, coeffs, rhs, ts):
        sol = solve_linear_diophantine_eq(coeffs, rhs)
        if sol is None:
            return
        particular, basis = sol
        point = list(particular)
        for t, vec in zip(ts, basis):
            for i in range(len(point)):
                point[i] += t * vec[i]
        assert sum(c * x for c, x in zip(coeffs, point)) == rhs
