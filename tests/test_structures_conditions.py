"""Tests for repro.structures.conditions (validity predicate algebra)."""

import pytest

from repro.structures.conditions import And, Eq, FALSE, Ne, Not, Or, TRUE
from repro.structures.params import S


class TestAtoms:
    def test_true_everywhere(self):
        assert TRUE.holds((1, 2, 3), {})

    def test_false_nowhere(self):
        assert not FALSE.holds((1, 2, 3), {})

    def test_eq_concrete(self):
        c = Eq(0, 1)
        assert c.holds((1, 5), {})
        assert not c.holds((2, 5), {})

    def test_eq_symbolic(self):
        c = Eq(1, S("p"))
        assert c.holds((9, 3), {"p": 3})
        assert not c.holds((9, 4), {"p": 3})

    def test_ne_concrete(self):
        c = Ne(0, 1)
        assert not c.holds((1,), {})
        assert c.holds((2,), {})

    def test_ne_symbolic(self):
        c = Ne(0, S("u"))
        assert c.holds((3,), {"u": 4})
        assert not c.holds((4,), {"u": 4})

    def test_params(self):
        assert Eq(0, S("p")).params() == {"p"}
        assert Ne(0, 3).params() == frozenset()
        assert TRUE.params() == frozenset()


class TestCombinators:
    def test_and(self):
        c = And(Eq(0, 1), Ne(1, 2))
        assert c.holds((1, 3), {})
        assert not c.holds((1, 2), {})
        assert not c.holds((2, 3), {})

    def test_or(self):
        c = Or(Eq(0, 1), Eq(1, 1))
        assert c.holds((1, 9), {})
        assert c.holds((9, 1), {})
        assert not c.holds((9, 9), {})

    def test_not(self):
        c = Not(Eq(0, 1))
        assert not c.holds((1,), {})
        assert c.holds((2,), {})

    def test_operator_sugar(self):
        c = Eq(0, 1) & Ne(1, 1)
        assert isinstance(c, And)
        c2 = Eq(0, 1) | Eq(0, 2)
        assert isinstance(c2, Or)
        c3 = ~Eq(0, 1)
        assert isinstance(c3, Not)

    def test_and_flattens(self):
        inner = And(Eq(0, 1), Eq(1, 1))
        outer = And(inner, Eq(2, 1))
        assert len(outer.terms) == 3

    def test_or_flattens(self):
        outer = Or(Or(Eq(0, 1), Eq(1, 1)), Eq(2, 1))
        assert len(outer.terms) == 3

    def test_and_dedupes(self):
        c = And(Eq(0, 1), Eq(0, 1))
        assert len(c.terms) == 1

    def test_and_drops_true(self):
        c = And(TRUE, Eq(0, 1))
        assert len(c.terms) == 1

    def test_empty_and_is_true(self):
        assert And().holds((5,), {})

    def test_empty_or_is_false(self):
        assert not Or().holds((5,), {})


class TestShiftAxes:
    def test_eq_shift(self):
        assert Eq(0, 1).shift_axes(2) == Eq(2, 1)

    def test_ne_shift(self):
        assert Ne(1, S("p")).shift_axes(3) == Ne(4, S("p"))

    def test_true_shift(self):
        assert TRUE.shift_axes(5) is TRUE

    def test_compound_shift(self):
        c = And(Eq(0, 1), Or(Ne(1, 2), Eq(2, 3)))
        shifted = c.shift_axes(1)
        assert shifted.holds((9, 1, 3, 9), {})
        assert not shifted.holds((9, 2, 2, 9), {})

    def test_shift_preserves_semantics(self):
        c = Or(Eq(0, S("p")), Ne(1, 1))
        s = c.shift_axes(2)
        point = (7, 7, 3, 2)
        assert s.holds(point, {"p": 3}) == c.holds(point[2:], {"p": 3})


class TestEqualityHash:
    def test_eq_equality(self):
        assert Eq(0, S("p")) == Eq(0, S("p"))
        assert Eq(0, 1) != Eq(1, 1)
        assert Eq(0, 1) != Ne(0, 1)

    def test_and_order_insensitive(self):
        assert And(Eq(0, 1), Ne(1, 2)) == And(Ne(1, 2), Eq(0, 1))

    def test_or_order_insensitive(self):
        assert Or(Eq(0, 1), Eq(1, 1)) == Or(Eq(1, 1), Eq(0, 1))

    def test_hashable(self):
        s = {TRUE, FALSE, Eq(0, 1), Ne(0, 1), And(Eq(0, 1)), Or(Eq(0, 1))}
        assert len(s) == 6

    def test_not_equality(self):
        assert Not(Eq(0, 1)) == Not(Eq(0, 1))
        assert Not(Eq(0, 1)) != Not(Eq(0, 2))


class TestPaperConditions:
    """The specific validity predicates appearing in the paper."""

    def test_q2_boundary_expansion2(self):
        # q̄₂: i1 = p or i2 = 1, in a 5-D bit-level point (axes 3, 4).
        p = S("p")
        q2 = Or(Eq(3, p), Eq(4, 1))
        assert q2.holds((1, 1, 1, 3, 2), {"p": 3})   # southern
        assert q2.holds((1, 1, 1, 2, 1), {"p": 3})   # eastern
        assert not q2.holds((1, 1, 1, 2, 2), {"p": 3})

    def test_q1_expansion1(self):
        # q̄₁: j = u and (i1 != 1 or i2 not in {1, 2}); 1-D model axes 0,1,2.
        u = S("u")
        q1 = And(Eq(0, u), Or(Ne(1, 1), And(Ne(2, 1), Ne(2, 2))))
        assert q1.holds((4, 2, 1), {"u": 4})
        assert q1.holds((4, 1, 3), {"u": 4})
        assert not q1.holds((4, 1, 2), {"u": 4})
        assert not q1.holds((3, 2, 3), {"u": 4})
