"""Tests for the generic model-(3.5) bit-level machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.model import BitLevelModelMachine
from repro.mapping import designs
from repro.mapping.transform import MappingMatrix


def matmul_machine(u, p, expansion="II"):
    return BitLevelModelMachine(
        [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p,
        designs.fig4_mapping(p), expansion,
    )


def matmul_words(X, Y, u):
    xw, yw = {}, {}
    for j1 in range(1, u + 1):
        for j2 in range(1, u + 1):
            for j3 in range(1, u + 1):
                xw[(j1, j2, j3)] = X[j1 - 1][j3 - 1]
                yw[(j1, j2, j3)] = Y[j3 - 1][j2 - 1]
    return xw, yw


CONV_T = MappingMatrix([[3, 0, 1, 0], [0, 0, 0, 1], [2, 1, 2, 1]], "T-conv")


def conv_machine(n_pts, taps, p=3, expansion="II"):
    return BitLevelModelMachine(
        [1, 0], [1, -1], [0, 1], [1, 1], [n_pts, taps], p, CONV_T, expansion,
    )


def conv_words(w, sig, n_pts, taps):
    xw, yw = {}, {}
    for j1 in range(1, n_pts + 1):
        for j2 in range(1, taps + 1):
            xw[(j1, j2)] = w[j2 - 1]
            yw[(j1, j2)] = sig[j1 + j2 - 2]
    return xw, yw


class TestValidation:
    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            BitLevelModelMachine([1], [1, 0], [1], [1], [3], 2,
                                 designs.fig4_mapping(2))

    def test_zero_h3_rejected(self):
        with pytest.raises(ValueError):
            BitLevelModelMachine([0, 1, 0], [1, 0, 0], [0, 0, 0],
                                 [1, 1, 1], [2, 2, 2], 2,
                                 designs.fig4_mapping(2))

    def test_missing_word_rejected(self):
        m = matmul_machine(2, 2)
        with pytest.raises(ValueError, match="missing"):
            m.run({}, {})

    def test_pipelining_violation_rejected(self):
        m = matmul_machine(2, 2)
        X = [[1, 2], [3, 1]]
        xw, yw = matmul_words(X, X, 2)
        xw[(1, 2, 1)] = (xw[(1, 2, 1)] + 1) % 4  # break x(j̄)=x(j̄-h̄₁)
        with pytest.raises(ValueError, match="pipelining"):
            m.run(xw, yw)

    def test_word_too_wide_rejected(self):
        m = matmul_machine(2, 2)
        xw, yw = matmul_words([[5, 0], [0, 0]], [[1, 1], [1, 1]], 2)
        with pytest.raises(ValueError, match="word length"):
            m.run(xw, yw)


class TestMatmulEquivalence:
    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_matches_matmul_machine(self, expansion, rng):
        from repro.machine.bitlevel import BitLevelMatmulMachine

        u, p = 2, 3
        X = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        Y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        specialized = BitLevelMatmulMachine(
            u, p, designs.fig4_mapping(p), expansion
        ).run(X, Y)
        xw, yw = matmul_words(X, Y, u)
        generic = matmul_machine(u, p, expansion).run(xw, yw)
        for j1 in range(1, u + 1):
            for j2 in range(1, u + 1):
                assert generic.outputs[(j1, j2, u)] == specialized.product[j1 - 1][j2 - 1]

    def test_outputs_at_chain_ends_only(self, rng):
        u, p = 2, 2
        xw, yw = matmul_words([[1, 2], [3, 0]], [[2, 1], [0, 3]], u)
        run = matmul_machine(u, p).run(xw, yw)
        assert set(run.outputs) == {
            (j1, j2, u) for j1 in range(1, u + 1) for j2 in range(1, u + 1)
        }

    def test_reference_agrees(self, rng):
        u, p = 3, 2
        X = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        xw, yw = matmul_words(X, X, u)
        m = matmul_machine(u, p)
        assert m.run(xw, yw).outputs == m.reference(xw, yw)


class TestConvolution:
    @pytest.mark.parametrize("expansion", ["II"])
    def test_correct_convolution(self, expansion, rng):
        p, n_pts, taps = 3, 4, 3
        w = [rng.randrange(1 << p) for _ in range(taps)]
        sig = [rng.randrange(1 << p) for _ in range(n_pts + taps)]
        xw, yw = conv_words(w, sig, n_pts, taps)
        m = conv_machine(n_pts, taps, p, expansion)
        run = m.run(xw, yw)
        mask = (1 << (2 * p - 1)) - 1
        for j1 in range(1, n_pts + 1):
            want = sum(w[j2 - 1] * sig[j1 + j2 - 2] for j2 in range(1, taps + 1))
            assert run.outputs[(j1, taps)] == want & mask

    def test_z_init_supported(self, rng):
        p, n_pts, taps = 3, 3, 2
        w = [1, 2]
        sig = [3, 1, 2, 1, 0]
        xw, yw = conv_words(w, sig, n_pts, taps)
        z0 = {(j1, 1): 5 for j1 in range(1, n_pts + 1)}
        m = conv_machine(n_pts, taps, p)
        run = m.run(xw, yw, z_init=z0)
        assert run.outputs == m.reference(xw, yw, z_init=z0)

    def test_simulation_stats(self, rng):
        m = conv_machine(3, 2, 3)
        w = [1, 3]
        sig = [2, 5, 1, 4]
        xw, yw = conv_words(w, sig, 3, 2)
        run = m.run(xw, yw)
        assert run.sim.computations == 3 * 2 * 9
        assert run.max_summands <= 5

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_property_random_signals(self, data):
        p, n_pts, taps = 3, 3, 3
        w = [data.draw(st.integers(0, 7)) for _ in range(taps)]
        sig = [data.draw(st.integers(0, 7)) for _ in range(n_pts + taps)]
        xw, yw = conv_words(w, sig, n_pts, taps)
        m = conv_machine(n_pts, taps, p)
        assert m.run(xw, yw).outputs == m.reference(xw, yw)


class TestExpansion1ZInit:
    """Regression: Expansion I must decompose initial z words at the
    boundary owner points only (one bit per weight position), not at every
    same-weight lattice point."""

    def test_z_init_expansion1(self, rng):
        p, u = 3, 2
        m = BitLevelModelMachine(
            [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [u, u, u], p,
            designs.fig4_mapping(p), "I",
        )
        xw, yw = {}, {}
        X = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        Y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        for j1 in range(1, u + 1):
            for j2 in range(1, u + 1):
                for j3 in range(1, u + 1):
                    xw[(j1, j2, j3)] = X[j1 - 1][j3 - 1]
                    yw[(j1, j2, j3)] = Y[j3 - 1][j2 - 1]
        z0 = {
            (j1, j2, 1): rng.randrange(1 << (2 * p - 1))
            for j1 in range(1, u + 1) for j2 in range(1, u + 1)
        }
        assert m.run(xw, yw, z_init=z0).outputs == m.reference(xw, yw, z0)
