"""Randomized Theorem 3.1 verification via hypothesis.

Random lexicographically-positive word-level models at tiny sizes; the
compositional structure must match general dependence analysis of the
expanded program for every draw.
"""

from hypothesis import given, settings, strategies as st

from repro.expansion.verify import verify_theorem31

# Lexicographically positive vectors by construction (no filtering).
vec_1d = st.tuples(st.integers(1, 2))
vec_2d = st.one_of(
    st.tuples(st.integers(1, 2), st.integers(-1, 2)),
    st.tuples(st.just(0), st.integers(1, 2)),
)


@given(
    vec_1d, vec_1d, vec_1d,
    st.integers(3, 4),
    st.sampled_from(["I", "II"]),
)
@settings(max_examples=25, deadline=None)
def test_random_1d_models(h1, h2, h3, u, expansion):
    rep = verify_theorem31(
        list(h1), list(h2), list(h3), [1], [u], 2, expansion
    )
    assert rep.matches, rep.summary()


@given(
    vec_2d, vec_2d, vec_2d,
    st.sampled_from(["I", "II"]),
)
@settings(max_examples=20, deadline=None)
def test_random_2d_models(h1, h2, h3, expansion):
    rep = verify_theorem31(
        list(h1), list(h2), list(h3), [1, 1], [3, 3], 2, expansion
    )
    assert rep.matches, rep.summary()
