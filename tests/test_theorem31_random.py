"""Randomized Theorem 3.1 verification via hypothesis.

Random lexicographically-positive word-level models at tiny sizes; the
compositional structure must match general dependence analysis of the
expanded program for every draw.  The sampling strategies are the shared
ones from :mod:`repro.verify.generator` (lex-positive by construction, no
filtering), so this suite and the ``repro verify`` oracle runner exercise
the same case distribution.
"""

from hypothesis import given, settings, strategies as st

from repro.expansion.verify import verify_theorem31
from repro.verify.generator import (
    SizeEnvelope,
    theorem31_case_strategy,
    word_vector_strategy,
)

vec_1d = word_vector_strategy(1, max_step=2)
vec_2d = word_vector_strategy(2, max_step=2)


@given(
    vec_1d, vec_1d, vec_1d,
    st.integers(3, 4),
    st.sampled_from(["I", "II"]),
)
@settings(max_examples=25, deadline=None)
def test_random_1d_models(h1, h2, h3, u, expansion):
    rep = verify_theorem31(
        list(h1), list(h2), list(h3), [1], [u], 2, expansion
    )
    assert rep.matches, rep.summary()


@given(
    vec_2d, vec_2d, vec_2d,
    st.sampled_from(["I", "II"]),
)
@settings(max_examples=20, deadline=None)
def test_random_2d_models(h1, h2, h3, expansion):
    rep = verify_theorem31(
        list(h1), list(h2), list(h3), [1, 1], [3, 3], 2, expansion
    )
    assert rep.matches, rep.summary()


@given(theorem31_case_strategy(SizeEnvelope(max_extent=3)))
@settings(max_examples=15, deadline=None)
def test_random_whole_cases(case):
    rep = verify_theorem31(
        case.h1, case.h2, case.h3, case.lowers, case.uppers,
        case.p, case.expansion, method=case.method,
    )
    assert rep.matches, rep.summary()
