"""Tests for repro.render (text rendering)."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.machine.array import SystolicArray
from repro.machine.bitlevel import BitLevelMatmulMachine
from repro.machine.simulator import SpaceTimeSimulator
from repro.mapping import check_feasibility, designs
from repro.render import (
    render_algorithm,
    render_array,
    render_dependence_matrix,
    render_gantt,
    render_wavefronts,
)
from repro.structures.dependence import DependenceMatrix


class TestDependenceMatrix:
    def test_matmul_word(self):
        out = render_dependence_matrix(matmul_word_structure().dependences)
        assert "x" in out and "y" in out and "z" in out
        assert "[" in out and "]" in out

    def test_bit_level_conditions_shown(self):
        out = render_dependence_matrix(matmul_bit_level().dependences)
        assert "c'" in out
        assert "q[3] == p" in out
        assert "q̄" in out  # the uniform column

    def test_row_count(self):
        out = render_dependence_matrix(matmul_bit_level().dependences)
        body_rows = [l for l in out.splitlines() if l.startswith(("[", "|"))]
        assert len(body_rows) == 5

    def test_empty(self):
        assert "empty" in render_dependence_matrix(DependenceMatrix([]))

    def test_long_conditions_stacked(self):
        alg = matmul_bit_level(expansion="I")
        out = render_dependence_matrix(alg.dependences)
        # Expansion I's q̄₁ condition is long; the validity block may stack.
        assert "valid at" in out or "q[2] ==" in out


class TestAlgorithm:
    def test_header(self):
        out = render_algorithm(matmul_bit_level())
        assert "5-dimensional" in out
        assert "J =" in out and "D =" in out

    def test_uniform_label(self):
        out = render_algorithm(matmul_word_structure())
        assert "uniform" in out


class TestArray:
    def make(self, u=2, p=2):
        alg = matmul_bit_level(u, p, "II")
        binding = {"u": u, "p": p}
        rep = check_feasibility(
            designs.fig4_mapping(p), alg, binding,
            primitives=designs.fig4_primitives(p),
        )
        return SystolicArray(designs.fig4_mapping(p), alg, binding, rep.interconnect)

    def test_stats_present(self):
        out = render_array(self.make())
        assert "16 PEs" in out
        assert "longest wire: 2" in out
        assert "buffer stages" in out

    def test_grid_drawn_when_small(self):
        out = render_array(self.make())
        assert "####" in out

    def test_grid_suppressed_when_large(self):
        out = render_array(self.make(), max_cells=1)
        assert "####" not in out

    def test_no_links(self):
        alg = matmul_bit_level(2, 2, "II")
        arr = SystolicArray(designs.fig4_mapping(2), alg, {"u": 2, "p": 2})
        out = render_array(arr)
        assert "links by primitive" not in out


class TestGanttWavefronts:
    def test_gantt(self):
        m = BitLevelMatmulMachine(2, 2, designs.fig4_mapping(2), "II")
        sim = SpaceTimeSimulator(m.mapping, m.algorithm, m.binding)
        sim.run(lambda q, s: None)
        out = render_gantt(sim.pes)
        assert "#" in out and "t=" in out

    def test_gantt_truncation(self):
        m = BitLevelMatmulMachine(2, 2, designs.fig4_mapping(2), "II")
        sim = SpaceTimeSimulator(m.mapping, m.algorithm, m.binding)
        sim.run(lambda q, s: None)
        out = render_gantt(sim.pes, max_pes=2)
        assert "more PEs" in out

    def test_gantt_empty(self):
        assert "no PEs" in render_gantt({})

    def test_wavefronts(self):
        alg = matmul_bit_level(2, 2, "II")
        out = render_wavefronts(alg, designs.fig4_mapping(2), {"u": 2, "p": 2})
        assert out.startswith("t=")
        # First front is the single corner point at t = Π[1,1,1,1,1] = 6.
        assert "(   1 points)" in out.splitlines()[0]

    def test_wavefront_truncation(self):
        alg = matmul_bit_level(3, 3, "II")
        out = render_wavefronts(
            alg, designs.fig4_mapping(3), {"u": 3, "p": 3}, max_fronts=2
        )
        assert "more fronts" in out
