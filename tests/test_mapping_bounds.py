"""Tests for free-schedule lower bounds (repro.mapping.bounds)."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.mapping.bounds import (
    critical_path_length,
    free_schedule_time,
    free_schedule_times,
)
from repro.structures.algorithm import Algorithm
from repro.structures.conditions import TRUE
from repro.structures.dependence import DependenceVector
from repro.structures.indexset import IndexSet


class TestFreeSchedule:
    def test_chain(self):
        alg = Algorithm(IndexSet.cube(1, 5), [DependenceVector([1])])
        times = free_schedule_times(alg, {})
        assert times == {(k,): k - 1 for k in range(1, 6)}
        assert free_schedule_time(alg, {}) == 5

    def test_no_dependences(self):
        alg = Algorithm(IndexSet.cube(2, 3), [])
        assert critical_path_length(alg, {}) == 0
        assert free_schedule_time(alg, {}) == 1

    def test_word_matmul(self):
        # Critical path of the word-level matmul: 3(u-1).
        alg = matmul_word_structure()
        assert free_schedule_time(alg, {"u": 4}) == 3 * 3 + 1

    def test_validity_respected(self):
        from repro.structures.conditions import Eq

        # Dependence valid only at j2 = 1: the chain runs in that column.
        alg = Algorithm(
            IndexSet.cube(2, 4),
            [DependenceVector([1, 0], (), Eq(1, 1))],
        )
        assert critical_path_length(alg, {}) == 3

    def test_cycle_detected(self):
        alg = Algorithm(
            IndexSet.cube(1, 3),
            [DependenceVector([1]), DependenceVector([-1])],
        )
        with pytest.raises(ValueError, match="cycle"):
            free_schedule_times(alg, {})

    def test_empty_set(self):
        alg = Algorithm(IndexSet([2], [1]), [DependenceVector([1])])
        assert free_schedule_time(alg, {}) == 1


class TestFig4AbsoluteOptimality:
    """Fig. 4's linear schedule matches the free-schedule lower bound:
    a sharper statement than Theorem 4.5 (optimality among all schedules,
    not just linear ones)."""

    @pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (4, 2), (2, 4)])
    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_fig4_hits_lower_bound(self, u, p, expansion):
        alg = matmul_bit_level(u, p, expansion)
        assert free_schedule_time(alg, {"u": u, "p": p}) == designs.t_fig4(u, p)

    def test_fig5_above_lower_bound(self):
        alg = matmul_bit_level(3, 3, "II")
        assert designs.t_fig5(3, 3) > free_schedule_time(alg, {"u": 3, "p": 3})

    def test_no_linear_schedule_below_bound(self):
        # Consistency: the linear-schedule optimum cannot undercut the
        # free-schedule bound.
        from repro.mapping.schedule import find_optimal_schedule

        alg = matmul_bit_level(2, 3, "II")
        best = find_optimal_schedule(alg, {"u": 2, "p": 3}, coeff_bound=2)
        assert best is not None
        assert best[1] >= free_schedule_time(alg, {"u": 2, "p": 3})
