"""Tests for the vectorized dependence-analysis engine.

The batched backend's contract is bit-identical equivalence with the
scalar reference: the same ordered instance list and the same statistics
counters, for both the exact (Diophantine) and enumerate (hash-join)
methods, with and without screening.  These tests pin that contract plus
the backend-resolution policy and the numpy-level helpers.
"""

import pytest

from repro.depanalysis import analyze
from repro.depanalysis.engine import (
    AnalysisConfig,
    BACKENDS,
    HAVE_NUMPY,
    analyze_enumerate_batched,
    analyze_exact_batched,
    default_backend,
    resolve_backend,
)
from repro.ir import builders
from repro.ir.expand import expand_bit_level
from repro.ir.expr import var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.structures.indexset import IndexSet

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy required")


def _scalar(backend):
    return AnalysisConfig(backend=backend, cache=False)


def _assert_identical(a, b):
    assert [i.key() for i in a.instances] == [i.key() for i in b.instances]
    assert a.stats == b.stats


PROGRAMS = [
    (builders.matmul_pipelined(3), {"u": 3}),
    (builders.addshift_pipelined(4), {"p": 4}),
    (builders.model_1d(2, 1, 3, upper=7), {}),
    (builders.word_model([1, 0], [1, -1], [0, 1], [1, 1], [4, 3]), {}),
    (expand_bit_level([1], [1], [1], [1], [3], 2, "II"), {}),
    (expand_bit_level([0, 1], [1, 0], [1, 1], [1, 1], [3, 2], 3, "I"), {}),
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("prog,binding", PROGRAMS)
    def test_exact_screens_on(self, prog, binding):
        _assert_identical(
            analyze(prog, binding, "exact", config=_scalar("scalar")),
            analyze(prog, binding, "exact", config=_scalar("batched")),
        )

    @pytest.mark.parametrize("prog,binding", PROGRAMS)
    def test_exact_screens_off(self, prog, binding):
        _assert_identical(
            analyze(prog, binding, "exact", use_screens=False,
                    config=_scalar("scalar")),
            analyze(prog, binding, "exact", use_screens=False,
                    config=_scalar("batched")),
        )

    @pytest.mark.parametrize("prog,binding", PROGRAMS)
    def test_enumerate(self, prog, binding):
        _assert_identical(
            analyze(prog, binding, "enumerate", config=_scalar("scalar")),
            analyze(prog, binding, "enumerate", config=_scalar("batched")),
        )

    def test_guarded_program(self):
        # Bit-level expansion guards statements with Eq/Or conditions; the
        # batched mask path must replicate guard filtering exactly.
        prog = expand_bit_level([0, 1, 0], [1, 0, 0], [0, 0, 1],
                                [1, 1, 1], [2, 2, 2], 2, "II")
        for method in ("exact", "enumerate"):
            _assert_identical(
                analyze(prog, {"p": 2}, method, config=_scalar("scalar")),
                analyze(prog, {"p": 2}, method, config=_scalar("batched")),
            )

    def test_reversed_dependences(self):
        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [4], ("j",)),
            [Statement("S", ArrayAccess("x", [j]),
                       [ArrayAccess("x", [j + 1])])],
        )
        res = analyze(prog, {}, "enumerate", config=_scalar("batched"))
        assert res.instances and all(
            i.kind == "reversed" for i in res.instances
        )
        _assert_identical(res, analyze(prog, {}, "enumerate",
                                       config=_scalar("scalar")))

    @needs_numpy
    def test_non_single_assignment_detected_batched(self):
        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [3], ("j",)),
            [Statement("S", ArrayAccess("z", [j - j]))],
        )
        with pytest.raises(ValueError, match="single-assignment"):
            analyze_enumerate_batched(prog, {})

    def test_rank_mismatch_raises_like_scalar(self):
        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [3], ("j",)),
            [Statement("S", ArrayAccess("x", [j]),
                       [ArrayAccess("x", [j, j])])],
        )
        with pytest.raises(ValueError, match="rank mismatch"):
            analyze(prog, {}, "exact", config=_scalar("batched"))
        with pytest.raises(ValueError, match="rank mismatch"):
            analyze(prog, {}, "exact", config=_scalar("scalar"))


class TestBackendResolution:
    def test_backends_tuple(self):
        assert BACKENDS == ("scalar", "batched")

    def test_explicit_names(self):
        assert resolve_backend("scalar") == "scalar"
        if HAVE_NUMPY:
            assert resolve_backend("batched") == "batched"

    def test_auto_is_default(self):
        assert resolve_backend("auto") == default_backend()
        if HAVE_NUMPY:
            assert default_backend() == "batched"

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_BACKEND", "scalar")
        assert resolve_backend(None) == "scalar"
        monkeypatch.delenv("REPRO_ANALYSIS_BACKEND")
        assert resolve_backend(None) == default_backend()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            analyze(builders.model_1d(upper=3), {}, "magic",
                    config=_scalar("batched"))


@needs_numpy
class TestNumpyHelpers:
    def test_box_lattice_matches_product_order(self):
        import itertools

        from repro.depanalysis.engine import box_lattice

        bounds = [(1, 3), (-1, 1), (2, 2)]
        pts = box_lattice(bounds)
        expected = list(itertools.product(*[range(lo, hi + 1)
                                            for lo, hi in bounds]))
        assert [tuple(int(x) for x in row) for row in pts] == expected

    def test_condition_mask_matches_holds(self):
        from repro.depanalysis.engine import box_lattice, condition_mask
        from repro.structures.conditions import And, Eq, Ne, Not, Or

        cond = Or(And(Eq(0, 1), Ne(1, 2)), Not(Eq(2, 3)))
        bounds = [(1, 3)] * 3
        pts = box_lattice(bounds)
        mask = condition_mask(cond, pts, {})
        for row, ok in zip(pts, mask):
            point = tuple(int(x) for x in row)
            assert bool(ok) == cond.holds(point, {})

    def test_direct_batched_calls(self):
        prog = builders.matmul_pipelined(3)
        exact = analyze_exact_batched(prog, {"u": 3})
        enum = analyze_enumerate_batched(prog, {"u": 3})
        assert set(exact.instances) == set(enum.instances)


class TestObsCounters:
    @needs_numpy
    def test_batched_counters_emitted(self):
        from repro import obs

        prog = builders.matmul_pipelined(3)
        with obs.collecting() as reg:
            analyze(prog, {"u": 3}, "exact", config=_scalar("batched"))
        counters = dict(reg.counters)
        assert counters.get("depanalysis.pairs_batch_screened", 0) > 0
        assert counters.get("depanalysis.pairs_tested", 0) > 0

    def test_scalar_counters_match_stats(self):
        from repro import obs

        prog = builders.matmul_pipelined(2)
        with obs.collecting() as reg:
            res = analyze(prog, {"u": 2}, "exact", config=_scalar("scalar"))
        counters = dict(reg.counters)
        for key, value in res.stats.items():
            assert counters.get(f"depanalysis.{key}") == value
