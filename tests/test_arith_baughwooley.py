"""Tests for the Baugh-Wooley signed multiplier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.baughwooley import BaughWooleyMultiplier, baughwooley_structure
from repro.arith.registry import get_structure, list_structures
from repro.expansion.theorem31 import bit_level_structure
from repro.ir.builders import matmul_word_structure


class TestFunctional:
    @pytest.mark.parametrize("p", [2, 3, 4, 5])
    def test_exhaustive_signed(self, p):
        m = BaughWooleyMultiplier(p)
        lo, hi = -(1 << (p - 1)), (1 << (p - 1)) - 1
        for a in range(lo, hi + 1):
            for b in range(lo, hi + 1):
                assert m.multiply(a, b) == a * b

    @given(st.integers(6, 12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_sampled_large(self, p, data):
        half = 1 << (p - 1)
        a = data.draw(st.integers(-half, half - 1))
        b = data.draw(st.integers(-half, half - 1))
        assert BaughWooleyMultiplier(p).multiply(a, b) == a * b

    def test_most_negative_squared(self):
        # The classic edge case: (-2^{p-1})² needs the full 2p-1 bits.
        p = 4
        m = BaughWooleyMultiplier(p)
        assert m.multiply(-8, -8) == 64

    def test_out_of_range_rejected(self):
        m = BaughWooleyMultiplier(3)
        with pytest.raises(ValueError):
            m.multiply(4, 0)
        with pytest.raises(ValueError):
            m.multiply(0, -5)

    def test_p1_rejected(self):
        with pytest.raises(ValueError):
            BaughWooleyMultiplier(1)

    def test_steps(self):
        assert BaughWooleyMultiplier(4).steps == 18

    def test_heap_positions_bounded(self):
        heap = BaughWooleyMultiplier(4).partial_product_bits(-3, 5)
        assert max(heap) <= 2 * 4 - 1


class TestStructure:
    def test_registered(self):
        assert "baugh-wooley" in list_structures()
        s = get_structure("baugh-wooley", 4)
        assert s.index_set.size({}) == 16

    def test_same_geometry_as_addshift(self):
        bw = baughwooley_structure()
        from repro.arith.addshift import addshift_structure

        a = addshift_structure()
        assert bw.delta_a == a.delta_a
        assert bw.delta_b == a.delta_b
        assert bw.delta_s == a.delta_s
        assert bw.delta_carry == a.delta_carry

    def test_theorem31_applies(self):
        # Because the lattice geometry is add-shift's, Theorem 3.1 yields
        # exactly the same dependence matrix (causes and conditions).
        signed = bit_level_structure(matmul_word_structure(), "baugh-wooley", "II")
        unsigned = bit_level_structure(matmul_word_structure(), "add-shift", "II")
        assert set(signed.dependences.vectors) == set(unsigned.dependences.vectors)

    def test_executable_semantics(self):
        s = get_structure("baugh-wooley")
        assert s.multiply(-3, 5, 4) == -15
