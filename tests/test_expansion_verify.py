"""Tests for the Theorem 3.1 cross-validation harness."""

import pytest

from repro.expansion.theorem31 import bit_level_from_vectors
from repro.expansion.verify import effective_edges, verify_theorem31
from repro.ir.builders import word_model_structure


class TestEffectiveEdges:
    def test_simple_model(self):
        word = word_model_structure([1], [1], [1], [1], [3])
        edges = effective_edges(word, {})
        # Three uniform vectors over u=3: each connects 2 sink points, but
        # the vectors coincide (all [1]), so the edge set keys dedupe.
        assert edges == {((2,), (1,)), ((3,), (1,))}

    def test_respects_validity(self):
        alg = bit_level_from_vectors([1], [1], [1], [1], [3], 2, "II")
        edges = effective_edges(alg, {"u": 3, "p": 2})
        # c' edges (vector (0,0,2)) require i2 >= 3 > p = 2: none exist.
        assert not any(vec == (0, 0, 2) for _, vec in edges)

    def test_source_inside_filter(self):
        word = word_model_structure([2], [2], [2], [1], [3])
        edges = effective_edges(word, {})
        # d = 2: only sink 3 has source 1 inside.
        assert edges == {((3,), (2,))}


class TestVerifyTheorem31:
    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_1d_matches(self, expansion):
        rep = verify_theorem31([1], [1], [1], [1], [3], 2, expansion)
        assert rep.matches
        assert rep.summary().startswith("MATCH")

    @pytest.mark.parametrize("expansion", ["I", "II"])
    def test_matmul_matches(self, expansion):
        rep = verify_theorem31(
            [0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [2, 2, 2], 2,
            expansion,
        )
        assert rep.matches

    def test_convolution_matches(self):
        rep = verify_theorem31(
            [1, 0], [1, -1], [0, 1], [1, 1], [3, 3], 2, "II"
        )
        assert rep.matches

    def test_larger_h_matches(self):
        rep = verify_theorem31([3], [2], [1], [1], [6], 2, "I")
        assert rep.matches

    def test_exact_backend(self):
        rep = verify_theorem31([1], [1], [1], [1], [3], 2, "II", method="exact")
        assert rep.matches
        assert rep.analysis_stats["systems_solved"] > 0

    def test_vector_lists_populated(self):
        rep = verify_theorem31([1], [1], [1], [1], [3], 2, "II")
        assert rep.compositional_vectors
        # Every analyzed vector is predicted; the composition may also list
        # vectors with no effective edge at this size (c' needs i2 >= 3,
        # impossible at p = 2).
        assert set(rep.analysis_vectors) <= set(rep.compositional_vectors)

    def test_vector_sets_coincide_when_p_large_enough(self):
        rep = verify_theorem31([1], [1], [1], [1], [3], 3, "II")
        assert set(rep.analysis_vectors) == set(rep.compositional_vectors)

    def test_mismatch_reported(self):
        # Sanity: a deliberately wrong comparison reports a mismatch.
        from repro.depanalysis.analyzer import analyze
        from repro.expansion.verify import VerificationReport

        rep = VerificationReport(
            matches=False,
            missing_from_analysis=[((1,), (1,))],
            extra_in_analysis=[],
        )
        assert rep.summary().startswith("MISMATCH")
