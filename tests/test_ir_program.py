"""Tests for repro.ir.program (statements, guards, loop nests)."""

import pytest

from repro.ir.builders import matmul_naive, matmul_pipelined
from repro.ir.expr import var
from repro.ir.program import ArrayAccess, LoopNest, Statement
from repro.structures.conditions import Eq, Ne
from repro.structures.indexset import IndexSet
from repro.structures.params import S


class TestArrayAccess:
    def test_element(self):
        acc = ArrayAccess("x", [var("j1") - 1, var("j2")])
        assert acc.element({"j1": 3, "j2": 5}, {}) == ("x", (2, 5))

    def test_symbolic_offset(self):
        acc = ArrayAccess("x", [var("i") + S("p")])
        assert acc.element({"i": 1}, {"p": 4}) == ("x", (5,))

    def test_rank(self):
        assert ArrayAccess("z", [var("a"), var("b"), var("c")]).rank == 3

    def test_equality(self):
        a = ArrayAccess("x", [var("j")])
        b = ArrayAccess("x", [var("j")])
        assert a == b and hash(a) == hash(b)
        assert a != ArrayAccess("y", [var("j")])


class TestStatement:
    def test_unguarded_always_active(self):
        s = Statement("S", ArrayAccess("x", [var("j")]))
        assert s.active_at((1,), {})

    def test_guarded(self):
        s = Statement(
            "S", ArrayAccess("x", [var("j"), var("i")]),
            guard=Eq(1, 1),
        )
        assert s.active_at((9, 1), {})
        assert not s.active_at((9, 2), {})

    def test_symbolic_guard(self):
        s = Statement(
            "S", ArrayAccess("x", [var("j")]), guard=Ne(0, S("u"))
        )
        assert s.active_at((3,), {"u": 4})
        assert not s.active_at((4,), {"u": 4})


class TestLoopNest:
    def test_matmul_shape(self):
        prog = matmul_pipelined()
        assert prog.dim == 3
        assert prog.index_names == ("j1", "j2", "j3")
        assert len(prog.statements) == 3

    def test_axis(self):
        prog = matmul_pipelined()
        assert prog.axis("j2") == 1
        with pytest.raises(ValueError):
            prog.axis("nope")

    def test_point_env(self):
        prog = matmul_pipelined()
        assert prog.point_env((1, 2, 3)) == {"j1": 1, "j2": 2, "j3": 3}

    def test_arrays(self):
        prog = matmul_pipelined()
        assert prog.arrays_written() == {"x", "y", "z"}
        assert prog.arrays_read() == {"x", "y", "z"}

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError):
            LoopNest(("a",), IndexSet.cube(2, 3), [])

    def test_single_assignment_pipelined(self):
        assert matmul_pipelined().verify_single_assignment({"u": 3})

    def test_single_assignment_naive_holds(self):
        # Program (2.2) is already single-assignment (z has 3 subscripts).
        assert matmul_naive().verify_single_assignment({"u": 3})

    def test_single_assignment_violation_detected(self):
        j = var("j")
        prog = LoopNest(
            ("j",),
            IndexSet([1], [3], ("j",)),
            [Statement("S", ArrayAccess("z", [const0 := j - j]))],
        )
        # Every iteration writes z(0): not single-assignment.
        assert not prog.verify_single_assignment({})

    def test_guards_partition(self):
        # Two statements with complementary guards: exactly one active.
        i = var("i")
        prog = LoopNest(
            ("i",),
            IndexSet([1], [4], ("i",)),
            [
                Statement("A", ArrayAccess("x", [i]), guard=Eq(0, 1)),
                Statement("B", ArrayAccess("x", [i]), guard=Ne(0, 1)),
            ],
        )
        assert prog.verify_single_assignment({})

    def test_repr(self):
        assert "matmul" in repr(matmul_pipelined())
