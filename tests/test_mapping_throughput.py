"""Tests for pipelining-period / steady-state throughput analysis."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.mapping.throughput import (
    firing_time_sets,
    pipelining_period,
    steady_state_utilization,
)
from repro.mapping.transform import MappingMatrix
from repro.structures.algorithm import Algorithm
from repro.structures.dependence import DependenceVector
from repro.structures.indexset import IndexSet


class TestFiringSets:
    def test_word_level(self):
        alg = matmul_word_structure()
        sets = firing_time_sets(designs.word_level_mapping(), alg, {"u": 2})
        assert len(sets) == 4
        assert all(len(s) == 2 for s in sets.values())  # one per j3

    def test_injective_space_map_single_firings(self):
        # A 2-D space map assigning one PE per point: every PE fires once.
        alg = Algorithm(IndexSet.cube(2, 3), [DependenceVector([1, 0])])
        t = MappingMatrix([[1, 0], [0, 1], [1, 1]])
        sets = firing_time_sets(t, alg, {})
        assert len(sets) == 9
        assert all(len(s) == 1 for s in sets.values())


class TestPipeliningPeriod:
    @pytest.mark.parametrize("u", [2, 3, 4])
    def test_word_level_classical_u(self, u):
        # The classical result: the hex/mesh matmul array accepts a new
        # problem every u beats.
        alg = matmul_word_structure()
        assert pipelining_period(designs.word_level_mapping(), alg, {"u": u}) == u

    @pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (3, 2)])
    def test_fig4_period_is_u(self, u, p):
        alg = matmul_bit_level(u, p, "II")
        t = designs.fig4_mapping(p)
        assert pipelining_period(t, alg, {"u": u, "p": p}) == u

    def test_fig4_full_steady_state_utilization(self):
        alg = matmul_bit_level(3, 3, "II")
        t = designs.fig4_mapping(3)
        assert steady_state_utilization(t, alg, {"u": 3, "p": 3}) == 1.0

    def test_period_far_below_makespan(self):
        u, p = 3, 3
        alg = matmul_bit_level(u, p, "II")
        t = designs.fig4_mapping(p)
        assert pipelining_period(t, alg, {"u": u, "p": p}) < designs.t_fig4(u, p) / 3

    def test_single_firing_pes_period_one(self):
        alg = Algorithm(IndexSet.cube(1, 4), [DependenceVector([1])])
        t = MappingMatrix([[1], [1]])  # PE = j, time = j
        assert pipelining_period(t, alg, {}) == 1

    def test_safety(self):
        # β must never allow two same-PE firings to coincide across
        # instances: check directly for the returned value.
        alg = matmul_bit_level(2, 2, "II")
        t = designs.fig4_mapping(2)
        beta = pipelining_period(t, alg, {"u": 2, "p": 2})
        for times in firing_time_sets(t, alg, {"u": 2, "p": 2}).values():
            ordered = sorted(times)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    assert (b - a) % beta != 0

    def test_utilization_bounds(self):
        alg = matmul_word_structure()
        util = steady_state_utilization(
            designs.word_level_mapping(), alg, {"u": 3}
        )
        assert 0 < util <= 1
