"""Tests for the benchmark regression gate (repro.obs.regress)."""

import json

from repro.obs import regress


class TestRequirements:
    def test_required_uses_committed_baseline_times_tolerance(self):
        required, baseline = regress._required("analysis_batched", 0.5)
        if baseline is not None:
            assert required == max(
                regress.FLOORS["analysis_batched"], baseline * 0.5
            )
        else:  # no committed file: floor alone
            assert required == regress.FLOORS["analysis_batched"]

    def test_missing_baseline_degrades_to_floor(self):
        assert regress._load_baseline("no_such_check") is None
        required, baseline = regress._required("search_memo_hits", 0.5)
        assert baseline is None
        assert required == regress.FLOORS["search_memo_hits"]

    def test_committed_baselines_resolve(self):
        # The repo ships BENCH_*.json; every ratio check must find its
        # committed baseline (a rename would silently weaken the gate).
        for name in regress.BASELINE_KEYS:
            assert regress._load_baseline(name) is not None, name


class TestGateRuns:
    def test_clean_tree_passes_and_appends_history(self, tmp_path):
        history = tmp_path / "history.jsonl"
        report = regress.run_gate(repeats=1, history_path=history)
        assert report.ok, report.summary()
        assert {c.name for c in report.checks} == {
            "analysis_batched", "analysis_cache_warm",
            "simulator_wavefront", "compiled_kernel",
            "search_memo_hits", "symbolic_instantiate",
            "design_search_solver",
        }
        (record,) = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert record["ok"] is True
        assert record["timestamp"] > 0
        assert len(record["checks"]) == 7
        assert "environment" in record

    def test_injected_slowdown_fails(self, tmp_path):
        history = tmp_path / "history.jsonl"
        report = regress.run_gate(
            repeats=1, inject_slowdown_s=0.25, history_path=history
        )
        assert not report.ok
        failed = {c.name for c in report.checks if not c.passed}
        # Every timing-ratio check must trip; the structural memo check
        # is unaffected by a slowdown.
        assert failed >= {
            "analysis_batched", "simulator_wavefront",
            "compiled_kernel", "symbolic_instantiate",
        }
        (record,) = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert record["ok"] is False
        assert record["injected_slowdown_s"] == 0.25

    def test_cli_self_test(self, capsys):
        assert regress.main(["--self-test"]) == 0
        assert "self-test ok" in capsys.readouterr().out

    def test_cli_report_file(self, tmp_path, capsys):
        report_file = tmp_path / "gate.json"
        rc = regress.main(
            ["--smoke", "--repeats", "1", "--no-history",
             "--report", str(report_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench gate: PASS" in out
        data = json.loads(report_file.read_text())
        assert data["ok"] is True
        assert all("measured" in c for c in data["checks"])
