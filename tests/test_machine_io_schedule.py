"""Tests for array I/O schedules (the data skew of Figs. 4/5)."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.machine.io_schedule import (
    input_schedule,
    output_schedule,
    render_io,
)
from repro.mapping import designs


@pytest.fixture(scope="module")
def fig4_setup():
    u, p = 2, 2
    alg = matmul_bit_level(u, p, "II")
    return alg, designs.fig4_mapping(p), {"u": u, "p": p}, u, p


class TestInputSchedule:
    def test_sorted_by_time(self, fig4_setup):
        alg, t, binding, u, p = fig4_setup
        events = input_schedule(alg, t, binding)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_x_bits_enter_at_word_boundary(self, fig4_setup):
        alg, t, binding, u, p = fig4_setup
        events = input_schedule(alg, t, binding)
        x_events = [e for e in events if e.variable == "x" and e.vector[:3] != (0, 0, 0)]
        # x word inputs occur where j2 - 1 = 0, on the i1 = 1 row: u*u*p bits.
        assert len(x_events) == u * u * p
        assert all(e.point[1] == 1 and e.point[3] == 1 for e in x_events)

    def test_inputs_are_staggered(self, fig4_setup):
        # The figures' point: inputs do not all arrive at once.
        alg, t, binding, u, p = fig4_setup
        events = input_schedule(alg, t, binding)
        x_times = {e.time for e in events if e.variable == "x"}
        assert len(x_times) > 1

    def test_word_level_input_count(self):
        alg = matmul_word_structure()
        events = input_schedule(alg, designs.word_level_mapping(), {"u": 3})
        by_var = {}
        for e in events:
            by_var.setdefault(e.variable, 0)
            by_var[e.variable] += 1
        # x enters at j2=1 (u² events), y at j1=1 (u²), z starts at j3=1 (u²).
        assert by_var == {"x": 9, "y": 9, "z": 9}

    def test_every_input_at_array_edge_time_window(self, fig4_setup):
        alg, t, binding, u, p = fig4_setup
        events = input_schedule(alg, t, binding)
        first, last = events[0].time, events[-1].time
        # All inputs arrive within the makespan window.
        from repro.mapping.schedule import execution_time

        span = execution_time(t.schedule, alg, binding)
        assert last - first < span


class TestOutputSchedule:
    def test_z_outputs_at_chain_ends(self):
        alg = matmul_word_structure()
        events = output_schedule(alg, designs.word_level_mapping(), {"u": 3})
        z_out = [e for e in events if e.variable == "z"]
        assert len(z_out) == 9
        assert all(e.point[2] == 3 for e in z_out)

    def test_bit_level_outputs_exist(self, fig4_setup):
        alg, t, binding, u, p = fig4_setup
        events = output_schedule(alg, t, binding)
        assert events
        z_out = [e for e in events if e.variable == "z"]
        assert z_out


class TestRender:
    def test_render_contains_header(self, fig4_setup):
        alg, t, binding, _, _ = fig4_setup
        out = render_io(input_schedule(alg, t, binding), max_rows=5)
        assert out.splitlines()[0].strip().startswith("t")
        assert "more events" in out

    def test_render_empty(self):
        assert "no boundary events" in render_io([])
