"""Tests for repro.structures.algorithm."""

import pytest

from repro.ir.builders import matmul_word_structure
from repro.structures.algorithm import Algorithm, ComputationSet
from repro.structures.conditions import Eq
from repro.structures.dependence import DependenceMatrix, DependenceVector
from repro.structures.indexset import IndexSet
from repro.structures.params import S


class TestComputationSet:
    def test_from_mapping(self):
        c = ComputationSet({"S1": "z = z + x*y"})
        assert c.names() == ["S1"]

    def test_from_pairs(self):
        c = ComputationSet([("S1", "a"), ("S2", "b")])
        assert c.names() == ["S1", "S2"]

    def test_empty(self):
        assert ComputationSet().names() == []


class TestAlgorithm:
    def test_matmul_triplet(self):
        alg = matmul_word_structure()
        assert alg.dim == 3
        assert alg.is_uniform
        assert len(alg.dependences) == 3

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Algorithm(
                IndexSet.cube(2, 3),
                DependenceMatrix([DependenceVector([1, 0, 0])]),
            )

    def test_non_uniform(self):
        alg = Algorithm(
            IndexSet.cube(2, 3),
            [DependenceVector([1, 0], ("x",), Eq(0, 1))],
        )
        assert not alg.is_uniform

    def test_check_dependences_inside(self):
        alg = matmul_word_structure()
        assert alg.check_dependences_inside({"u": 3})

    def test_check_fails_for_escaping_vector(self):
        # Dependence longer than the box never connects two iterations.
        alg = Algorithm(
            IndexSet.cube(1, 3),
            [DependenceVector([5], ("x",))],
        )
        assert not alg.check_dependences_inside({})

    def test_dependence_edges_count(self):
        alg = matmul_word_structure()
        edges = alg.dependence_edges({"u": 2})
        # Each of the 3 unit vectors connects (u-1)*u*u = 4 pairs.
        assert len(edges) == 12
        for src, snk, vec in edges:
            assert tuple(s + d for s, d in zip(src, vec.vector)) == snk

    def test_dependence_edges_respect_validity(self):
        alg = Algorithm(
            IndexSet.cube(2, 3),
            [DependenceVector([1, 0], ("x",), Eq(1, 1))],  # only at j2 = 1
        )
        edges = alg.dependence_edges({})
        assert all(snk[1] == 1 for _, snk, _ in edges)
        assert len(edges) == 2  # (1,1)->(2,1), (2,1)->(3,1)

    def test_repr(self):
        alg = matmul_word_structure()
        assert "uniform" in repr(alg)
