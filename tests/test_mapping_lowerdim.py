"""Tests for the design-space search (engine, via the lowerdim re-exports)."""

import pytest

from repro.expansion.theorem31 import matmul_bit_level
from repro.ir.builders import matmul_word_structure
from repro.mapping import designs
from repro.mapping.lowerdim import (
    DesignCandidate,
    SearchConfig,
    run_search,
    space_map_catalog,
)


class TestCatalog:
    def test_units_present(self):
        rows = space_map_catalog(3)
        assert (1, 0, 0) in rows
        assert (0, 0, 1) in rows

    def test_pairwise_combinations(self):
        rows = space_map_catalog(2)
        assert (1, 1) in rows
        assert (1, -1) in rows

    def test_blocked_rows(self):
        rows = space_map_catalog(3, block_values=[4])
        assert (4, 1, 0) in rows
        assert (0, 4, 1) in rows

    def test_fig4_rows_reachable(self):
        # The paper's S rows are in the catalog with block value p.
        rows = space_map_catalog(5, block_values=[3])
        assert (3, 0, 0, 1, 0) in rows
        assert (0, 3, 0, 0, 1) in rows

    def test_no_duplicates(self):
        rows = space_map_catalog(4, block_values=[2, 2])
        assert len(rows) == len(set(rows))


class TestSearchWordLevel:
    def test_recovers_known_optimum(self):
        # Word-level matmul: the search must find a design as fast as the
        # classical T_w with t = 3(u-1)+1.
        alg = matmul_word_structure()
        cands = run_search(alg, {"u": 3}, None, SearchConfig(
            target_space_dim=2, schedule_bound=1, max_candidates=5,
        ))
        assert cands
        assert cands[0].time == 7  # 3(u-1)+1 at u=3
        # All results are genuinely feasible and sorted by (time, PEs).
        times = [(c.time, c.processors) for c in cands]
        assert times == sorted(times)
        for c in cands:
            assert c.report.feasible

    def test_candidate_repr(self):
        alg = matmul_word_structure()
        cands = run_search(alg, {"u": 2}, None, SearchConfig(
            schedule_bound=1, max_candidates=1,
        ))
        assert "t=" in repr(cands[0])


class TestSearchBitLevel:
    def test_matches_or_beats_fig4_time(self):
        u, p = 2, 2
        alg = matmul_bit_level(u, p, "II")
        cands = run_search(
            alg, {"u": u, "p": p}, designs.fig4_primitives(p),
            SearchConfig(target_space_dim=2, block_values=[p],
                         schedule_bound=2, max_candidates=3),
        )
        assert cands
        assert cands[0].time <= designs.t_fig4(u, p)

    def test_designs_conflict_free(self):
        u, p = 2, 2
        alg = matmul_bit_level(u, p, "II")
        cands = run_search(
            alg, {"u": u, "p": p}, designs.fig4_primitives(p),
            SearchConfig(block_values=[p], max_candidates=2),
        )
        for c in cands:
            assert c.report.conflict_free
            assert c.report.interconnect_ok

    def test_linear_array_needs_wide_schedules(self):
        # With small schedule coefficients a 1-D map of the 5-D algorithm
        # cannot be injective: the search correctly returns nothing.
        alg = matmul_bit_level(2, 2, "II")
        cands = run_search(alg, {"u": 2, "p": 2}, None, SearchConfig(
            target_space_dim=1, block_values=[2], max_candidates=2,
        ))
        assert cands == []

    def test_unconstrained_interconnect(self):
        alg = matmul_bit_level(2, 2, "II")
        cands = run_search(alg, {"u": 2, "p": 2}, None, SearchConfig(
            block_values=[2], max_candidates=2,
        ))
        assert cands
        assert all(c.report.interconnect is None for c in cands)
