"""Tests for expansion recognition (the 'program existing arrays' direction)."""

import pytest

from repro.expansion.recognize import RecognitionReport, recognize_expansion
from repro.ir.builders import matmul_pipelined
from repro.ir.expand import expand_bit_level


class TestRecognizesGeneratedPrograms:
    CASES = [
        ([1], [1], [1], [1], [4], 3, "II"),
        ([1], [1], [1], [1], [4], 3, "I"),
        ([2], [1], [1], [1], [5], 2, "II"),
        ([0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [2, 2, 2], 2, "II"),
        ([0, 1, 0], [1, 0, 0], [0, 0, 1], [1, 1, 1], [2, 2, 2], 2, "I"),
        ([1, 0], [1, -1], [0, 1], [1, 1], [3, 3], 2, "II"),
    ]

    @pytest.mark.parametrize("h1,h2,h3,lo,up,p,exp", CASES)
    def test_round_trip(self, h1, h2, h3, lo, up, p, exp):
        prog = expand_bit_level(h1, h2, h3, lo, up, p, exp)
        rep = recognize_expansion(prog)
        assert rep.recognized, rep.summary()
        assert rep.expansion == exp
        assert rep.p == p
        assert rep.word_dim == len(h1)

    def test_recovers_distinct_vectors(self):
        prog = expand_bit_level([2], [1], [3], [1], [7], 2, "II")
        rep = recognize_expansion(prog)
        assert rep.recognized
        assert (rep.h1, rep.h2, rep.h3) == ((2,), (1,), (3,))

    def test_summary_format(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "I")
        rep = recognize_expansion(prog)
        assert "Expansion I" in rep.summary()


class TestRejections:
    def test_too_few_dimensions(self):
        rep = recognize_expansion(matmul_pipelined(2))
        # 3-D: word dim would be 1 + a 2x2 "lattice" of size u -- the
        # analysis rejects it either on shape or on reconstruction.
        assert not rep.recognized

    def test_non_square_lattice(self):
        prog = expand_bit_level([1], [1], [1], [1], [3], 2, "II", p2=3)
        rep = recognize_expansion(prog)
        assert not rep.recognized
        assert "square" in rep.reason

    def test_failure_summary(self):
        rep = RecognitionReport(False, reason="because")
        assert rep.summary() == "not recognized: because"

    def test_corrupted_program_rejected(self):
        # Remove the c' statement: the dependence set no longer matches any
        # Theorem 3.1 reconstruction.
        from repro.ir.program import LoopNest

        prog = expand_bit_level([1], [1], [1], [1], [3], 3, "II")
        stripped = LoopNest(
            prog.index_names,
            prog.index_set,
            [s for s in prog.statements if s.write.array != "c2"
             and all(a.array != "c2" for a in s.reads)],
            "stripped",
        )
        rep = recognize_expansion(stripped)
        assert not rep.recognized
        assert rep.edge_mismatches > 0
