"""Tests for repro.util.linalg (exact integer linear algebra)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.linalg import (
    determinant,
    hermite_normal_form,
    identity_matrix,
    integer_nullspace,
    integer_rank,
    is_unimodular,
    mat_mul,
    mat_vec,
    smith_normal_form,
    solve_integer_system,
    transpose,
)


def matrices(max_dim=4, max_entry=6):
    return st.integers(1, max_dim).flatmap(
        lambda m: st.integers(1, max_dim).flatmap(
            lambda n: st.lists(
                st.lists(
                    st.integers(-max_entry, max_entry), min_size=n, max_size=n
                ),
                min_size=m,
                max_size=m,
            )
        )
    )


class TestBasicOps:
    def test_identity(self):
        assert identity_matrix(2) == [[1, 0], [0, 1]]

    def test_identity_zero(self):
        assert identity_matrix(0) == []

    def test_mat_mul(self):
        a = [[1, 2], [3, 4]]
        b = [[5, 6], [7, 8]]
        assert mat_mul(a, b) == [[19, 22], [43, 50]]

    def test_mat_mul_dimension_mismatch(self):
        with pytest.raises(ValueError):
            mat_mul([[1, 2]], [[1, 2]])

    def test_mat_vec(self):
        assert mat_vec([[1, 2], [3, 4]], [5, 6]) == [17, 39]

    def test_mat_vec_mismatch(self):
        with pytest.raises(ValueError):
            mat_vec([[1, 2]], [1, 2, 3])

    def test_transpose(self):
        assert transpose([[1, 2, 3], [4, 5, 6]]) == [[1, 4], [2, 5], [3, 6]]

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            integer_rank([[1, 2], [3]])


class TestRankDeterminant:
    def test_rank_full(self):
        assert integer_rank([[1, 0], [0, 1]]) == 2

    def test_rank_deficient(self):
        assert integer_rank([[1, 2], [2, 4]]) == 1

    def test_rank_zero_matrix(self):
        assert integer_rank([[0, 0], [0, 0]]) == 0

    def test_rank_wide(self):
        assert integer_rank([[1, 0, 1], [0, 1, 1]]) == 2

    def test_rank_tall(self):
        assert integer_rank([[1, 2], [3, 6], [1, 0]]) == 2

    def test_det_2x2(self):
        assert determinant([[2, 1], [1, 1]]) == 1

    def test_det_singular(self):
        assert determinant([[1, 2], [2, 4]]) == 0

    def test_det_3x3(self):
        assert determinant([[2, 0, 1], [1, 1, 0], [0, 3, 1]]) == 5

    def test_det_requires_square(self):
        with pytest.raises(ValueError):
            determinant([[1, 2, 3]])

    def test_det_needs_pivot_swap(self):
        assert determinant([[0, 1], [1, 0]]) == -1

    def test_unimodular(self):
        assert is_unimodular([[1, 1], [0, 1]])
        assert not is_unimodular([[2, 0], [0, 1]])
        assert not is_unimodular([[1, 0, 0], [0, 1, 0]])

    @given(matrices())
    @settings(max_examples=60)
    def test_rank_of_transpose(self, a):
        assert integer_rank(a) == integer_rank(transpose(a))


class TestHermite:
    def test_simple(self):
        h, u = hermite_normal_form([[2, 4], [1, 1]])
        assert mat_mul(u, [[2, 4], [1, 1]]) == h
        assert is_unimodular(u)
        # Echelon, positive pivots.
        assert h[0][0] > 0

    @given(matrices())
    @settings(max_examples=80)
    def test_uah_identity(self, a):
        h, u = hermite_normal_form(a)
        assert mat_mul(u, a) == h
        assert is_unimodular(u)

    @given(matrices())
    @settings(max_examples=80)
    def test_echelon_shape(self, a):
        h, _ = hermite_normal_form(a)
        # Pivot columns strictly increase row by row; zero rows trail.
        last_pivot = -1
        seen_zero_row = False
        for row in h:
            nz = next((j for j, x in enumerate(row) if x != 0), None)
            if nz is None:
                seen_zero_row = True
                continue
            assert not seen_zero_row
            assert nz > last_pivot
            assert row[nz] > 0
            last_pivot = nz


class TestSmith:
    def test_simple(self):
        a = [[2, 4, 4], [-6, 6, 12], [10, 4, 16]]
        d, u, v = smith_normal_form(a)
        assert mat_mul(mat_mul(u, a), v) == d
        assert is_unimodular(u)
        assert is_unimodular(v)

    @given(matrices())
    @settings(max_examples=80)
    def test_uav_identity(self, a):
        d, u, v = smith_normal_form(a)
        assert mat_mul(mat_mul(u, a), v) == d
        assert is_unimodular(u)
        assert is_unimodular(v)

    @given(matrices())
    @settings(max_examples=80)
    def test_diagonal_divisibility(self, a):
        d, _, _ = smith_normal_form(a)
        m, n = len(d), len(d[0])
        diag = [d[i][i] for i in range(min(m, n))]
        # Off-diagonal zero.
        for i in range(m):
            for j in range(n):
                if i != j:
                    assert d[i][j] == 0
        # Nonnegative, divisibility chain, zeros trail.
        for i, x in enumerate(diag):
            assert x >= 0
            if i + 1 < len(diag) and x != 0:
                assert diag[i + 1] % x == 0
            if x == 0 and i + 1 < len(diag):
                assert diag[i + 1] == 0


class TestNullspace:
    def test_trivial(self):
        assert integer_nullspace([[1, 0], [0, 1]]) == []

    def test_rank_one(self):
        basis = integer_nullspace([[1, 2]])
        assert len(basis) == 1
        v = basis[0]
        assert v[0] + 2 * v[1] == 0
        assert v != [0, 0]

    def test_broadcast_direction_matmul(self):
        # x(j1, j3) inside a (j1, j2, j3) nest: nullspace is the j2 axis.
        basis = integer_nullspace([[1, 0, 0], [0, 0, 1]])
        assert len(basis) == 1
        assert [abs(x) for x in basis[0]] == [0, 1, 0]

    @given(matrices())
    @settings(max_examples=80)
    def test_nullspace_vectors_annihilate(self, a):
        for vec in integer_nullspace(a):
            assert mat_vec(a, vec) == [0] * len(a)
            assert any(vec)

    @given(matrices())
    @settings(max_examples=60)
    def test_nullspace_dimension(self, a):
        n = len(a[0])
        assert len(integer_nullspace(a)) == n - integer_rank(a)


class TestSolveIntegerSystem:
    def test_unique_solution(self):
        sol = solve_integer_system([[1, 0], [0, 1]], [3, 4])
        assert sol is not None
        assert sol[0] == [3, 4]
        assert sol[1] == []

    def test_no_rational_solution(self):
        assert solve_integer_system([[1, 0], [1, 0]], [1, 2]) is None

    def test_no_integer_solution(self):
        assert solve_integer_system([[2]], [3]) is None

    def test_underdetermined(self):
        sol = solve_integer_system([[1, 1]], [5])
        assert sol is not None
        particular, basis = sol
        assert sum(particular) == 5
        assert len(basis) == 1

    def test_zero_columns(self):
        sol = solve_integer_system([[0, 0]], [0])
        assert sol is not None
        assert len(sol[1]) == 2

    def test_empty_width(self):
        assert solve_integer_system([[], []], [0, 0]) == ([], [])
        assert solve_integer_system([[], []], [1, 0]) is None

    @given(
        matrices(),
        st.lists(st.integers(-5, 5), min_size=1, max_size=4),
    )
    @settings(max_examples=80)
    def test_returned_solutions_valid(self, a, x_seed):
        # Construct a guaranteed-solvable system: b = A @ x for integer x.
        n = len(a[0])
        x = (x_seed * n)[:n]
        b = mat_vec(a, x)
        sol = solve_integer_system(a, b)
        assert sol is not None
        particular, basis = sol
        assert mat_vec(a, particular) == b
        for vec in basis:
            assert mat_vec(a, vec) == [0] * len(a)
