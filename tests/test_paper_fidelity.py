"""Verbatim fidelity checks: every numeric artifact of the paper, in one place.

Each test quotes one equation/figure and asserts the library reproduces it
exactly (up to the documented corrections in EXPERIMENTS.md).
"""

import pytest

from repro.arith.addshift import AddShiftMultiplier, addshift_structure
from repro.experiments.e4_fig4 import paper_order_D
from repro.expansion.theorem31 import matmul_bit_level
from repro.mapping import designs
from repro.util.linalg import mat_mul


class TestEq24:
    """D of eq. (2.4): columns y=[1,0,0], x=[0,1,0], z=[0,0,1]."""

    def test_matrix(self):
        from repro.ir.builders import matmul_word_structure

        alg = matmul_word_structure()
        cols = {tuple(v.causes): v.vector for v in alg.dependences}
        assert cols[("y",)] == (1, 0, 0)
        assert cols[("x",)] == (0, 1, 0)
        assert cols[("z",)] == (0, 0, 1)


class TestEq34:
    """D_as of eq. (3.4): δ̄₁=[1,0] (a), δ̄₂=[0,1] (b,c), δ̄₃=[1,-1] (s)."""

    def test_columns(self):
        mat = addshift_structure().dependence_matrix()
        by_vec = {v.vector: frozenset(v.causes) for v in mat}
        assert by_vec == {
            (1, 0): frozenset({"a"}),
            (0, 1): frozenset({"b", "c"}),
            (1, -1): frozenset({"s"}),
        }

    def test_output_positions(self):
        # "s_i = s(i, 1) for 1 <= i <= p, and s_i = s(p, i-p+1) for
        #  p < i <= 2p-1"
        p = 3
        mult = AddShiftMultiplier(p)
        t = mult.trace(5, 6)  # 30 = 011110b
        bits = [(30 >> k) & 1 for k in range(2 * p)]
        for i in range(1, p + 1):
            assert t["s"][(i, 1)] == bits[i - 1]
        for i in range(p + 1, 2 * p):
            assert t["s"][(p, i - p + 1)] == bits[i - 1]


class TestEq312_313:
    """The bit-level matmul structure (symbolic check is in E3 tests)."""

    def test_seven_columns_five_rows(self):
        alg = matmul_bit_level()
        assert len(alg.dependences) == 7
        assert alg.dependences.dim == 5

    def test_index_set_counts(self):
        alg = matmul_bit_level(3, 2)
        assert alg.index_set.size({"u": 3, "p": 2}) == 3**3 * 2**2


class TestEq42_43_44:
    """T of (4.2), P/K of (4.3), and the full TD of (4.4)."""

    def test_T(self):
        t = designs.fig4_mapping(3)
        assert [list(r) for r in t.rows] == [
            [3, 0, 0, 1, 0],
            [0, 3, 0, 0, 1],
            [1, 1, 1, 2, 1],
        ]

    def test_P(self):
        assert designs.fig4_primitives(3) == [
            [3, 0, 0, 1, 0, 1],
            [0, 3, 0, 0, 1, -1],
        ]

    def test_TD_eq_44(self):
        # TD (paper column order y,x,z,x,(y,c),z,c'):
        #   [[p 0 0 1 0 1 0], [0 p 0 0 1 -1 2], [1 1 1 2 1 1 2]]
        p = 3
        alg = matmul_bit_level(3, p, "II")
        d = paper_order_D(alg)
        t = designs.fig4_mapping(p)
        td = mat_mul([list(r) for r in t.rows], d)
        assert td == [
            [p, 0, 0, 1, 0, 1, 0],
            [0, p, 0, 0, 1, -1, 2],
            [1, 1, 1, 2, 1, 1, 2],
        ]

    def test_K_shape(self):
        k = designs.fig4_k_paper()
        assert len(k) == 6 and all(len(row) == 7 for row in k)
        assert all(x >= 0 for row in k for x in row)


class TestEq45_46_48:
    """Timing formulas and processor counts of Section 4.2."""

    @pytest.mark.parametrize("u,p", [(2, 2), (3, 3), (7, 5)])
    def test_t_45(self, u, p):
        assert designs.t_fig4(u, p) == 3 * (u - 1) + 3 * (p - 1) + 1

    def test_Tprime_46(self):
        t = designs.fig5_mapping(4)
        assert [list(r) for r in t.rows] == [
            [4, 0, 0, 1, 0],
            [0, 4, 0, 0, 1],
            [4, 4, 1, 2, 1],
        ]

    def test_Pprime_47(self):
        assert designs.fig5_primitives() == [
            [1, 0, 1, 0],
            [0, 1, -1, 0],
        ]

    @pytest.mark.parametrize("u,p", [(3, 3), (5, 2)])
    def test_t_48_corrected(self, u, p):
        # The printed (4.8) is (2p-1)(u-1)+3(p-1)+1; the actual value of
        # the paper's own Π'-product is (2p+1)(u-1)+3(p-1)+1.
        assert designs.t_fig5(u, p) == (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1
        assert designs.t_fig5_printed(u, p) == (2 * p - 1) * (u - 1) + 3 * (p - 1) + 1

    @pytest.mark.parametrize("u,p", [(2, 3), (4, 2)])
    def test_processor_counts(self, u, p):
        assert designs.fig4_processor_count(u, p) == u * u * p * p
        assert designs.fig5_processor_count(u, p) == (u * p) ** 2


class TestSection42Speedup:
    """t_word = (3(u-1)+1)·t_b; O(p²) add-shift, O(p) carry-save."""

    def test_word_formula(self):
        from repro.arith.sequential import word_multiplier_cycles

        u, p = 6, 5
        for arith in ("add-shift", "carry-save"):
            assert designs.word_level_time(u, p, arith) == (
                3 * (u - 1) + 1
            ) * word_multiplier_cycles(arith, p)

    def test_tb_orders(self):
        from repro.arith.sequential import word_multiplier_cycles

        # add-shift quadratic, carry-save linear: doubling p roughly
        # quadruples vs doubles.
        a8, a16 = (word_multiplier_cycles("add-shift", k) for k in (8, 16))
        c8, c16 = (word_multiplier_cycles("carry-save", k) for k in (8, 16))
        assert 3.5 < a16 / a8 < 4.5
        assert c16 / c8 == 2

    def test_speedup_exceeds_p(self):
        # "O(p) times faster ... in practice" with carry-save, u > p.
        for p in (4, 8):
            assert designs.speedup(32, p, "carry-save") > p / 2
            assert designs.speedup(32, p, "add-shift") > p
