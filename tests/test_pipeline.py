"""Tests for the end-to-end design pipeline."""

import pytest

from repro.pipeline import BitLevelDesigner


def matmul_designer(u=2, p=2, **kw):
    return BitLevelDesigner(
        h1=[0, 1, 0], h2=[1, 0, 0], h3=[0, 0, 1],
        lowers=[1, 1, 1], uppers=[u, u, u], p=p, **kw,
    )


class TestConfiguration:
    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            BitLevelDesigner([1], [1, 0], [1], [1], [3], 2)

    def test_structure_cached(self):
        d = matmul_designer()
        assert d.structure() is d.structure()

    def test_structure_shape(self):
        d = matmul_designer(3, 2)
        alg = d.structure()
        assert alg.dim == 5
        assert len(alg.dependences) == 7

    def test_expansion_selection(self):
        d = matmul_designer(expansion="I")
        assert d.expansion.key == "I"


class TestValidate:
    def test_matmul_validates(self):
        rep = matmul_designer(2, 2).validate()
        assert rep.matches

    def test_convolution_validates(self):
        d = BitLevelDesigner([1, 0], [1, -1], [0, 1], [1, 1], [3, 2], 2)
        assert d.validate().matches


class TestDesignAndBuild:
    def test_full_pipeline_matmul(self, rng):
        u, p = 2, 2
        d = matmul_designer(u, p)
        best = d.design(schedule_bound=2, max_candidates=3)
        assert best.report.feasible

        machine = d.build_machine(best.mapping)
        X = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        Y = [[rng.randrange(1 << p) for _ in range(u)] for _ in range(u)]
        xw, yw = {}, {}
        for j1 in range(1, u + 1):
            for j2 in range(1, u + 1):
                for j3 in range(1, u + 1):
                    xw[(j1, j2, j3)] = X[j1 - 1][j3 - 1]
                    yw[(j1, j2, j3)] = Y[j3 - 1][j2 - 1]
        run = machine.run(xw, yw)
        assert run.outputs == machine.reference(xw, yw)
        assert run.sim.makespan == best.time

    def test_check_user_mapping(self):
        from repro.mapping import designs

        d = matmul_designer(2, 2)
        rep = d.check(designs.fig4_mapping(2), designs.fig4_primitives(2))
        assert rep.feasible

    def test_infeasible_search_raises(self):
        d = matmul_designer(2, 2)
        with pytest.raises(RuntimeError):
            # A 1-D array with tiny schedule coefficients is impossible.
            d.design(target_space_dim=1, schedule_bound=1, max_candidates=1)

    def test_default_primitives_include_long_wires(self):
        d = matmul_designer(2, 3)
        prims = d.default_primitives()
        cols = {tuple(prims[r][j] for r in range(2)) for j in range(len(prims[0]))}
        assert (3, 0) in cols and (0, 3) in cols and (1, -1) in cols
